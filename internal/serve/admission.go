package serve

import (
	"context"
	"errors"

	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// ErrShed is returned by Admission.Acquire when the server is saturated:
// the in-flight bound is reached and the wait queue is full (or the
// FaultAdmission site fired). Handlers translate it to 429 + Retry-After.
var ErrShed = errors.New("serve: overloaded, request shed")

// Admission is the bounded admission controller: at most maxInFlight
// requests execute concurrently and at most maxQueue more wait for a slot;
// anything beyond that is shed immediately. Both bounds are enforced by
// buffered-channel semaphores, so the in-flight invariant holds under any
// arrival pattern without explicit locking.
type Admission struct {
	inflight chan struct{}
	queue    chan struct{}

	depth    *obs.Gauge   // serve.queue.depth — waiters right now
	active   *obs.Gauge   // serve.inflight — admitted right now
	shed     *obs.Counter // serve.shed — rejections, forced or real
	admitted *obs.Counter // serve.admitted
}

// NewAdmission builds an admission controller. maxInFlight and maxQueue
// are clamped to at least 1 and 0 respectively. reg may be nil (metrics
// become no-ops).
func NewAdmission(maxInFlight, maxQueue int, reg *obs.Registry) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		inflight: make(chan struct{}, maxInFlight),
		queue:    make(chan struct{}, maxQueue),
		depth:    reg.Gauge("serve.queue.depth"),
		active:   reg.Gauge("serve.inflight"),
		shed:     reg.Counter("serve.shed"),
		admitted: reg.Counter("serve.admitted"),
	}
}

// Acquire admits the request or rejects it. It returns nil when a slot was
// obtained (the caller must Release), ErrShed when the queue is full, and
// ctx's error when the request was cancelled while waiting in the queue.
func (a *Admission) Acquire(ctx context.Context) error {
	if err := robust.Fire(FaultAdmission); err != nil {
		a.shed.Inc()
		return ErrShed
	}
	// Fast path: an execution slot is free.
	select {
	case a.inflight <- struct{}{}:
		a.admit()
		return nil
	default:
	}
	// Join the wait queue if it has room; otherwise shed.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Inc()
		return ErrShed
	}
	a.depth.Set(float64(len(a.queue)))
	defer func() {
		<-a.queue
		a.depth.Set(float64(len(a.queue)))
	}()
	select {
	case a.inflight <- struct{}{}:
		a.admit()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *Admission) admit() {
	a.admitted.Inc()
	a.active.Set(float64(len(a.inflight)))
}

// Release frees the slot obtained by a successful Acquire.
func (a *Admission) Release() {
	<-a.inflight
	a.active.Set(float64(len(a.inflight)))
}

// InFlight returns the number of currently admitted requests.
func (a *Admission) InFlight() int { return len(a.inflight) }

// QueueDepth returns the number of requests waiting for a slot.
func (a *Admission) QueueDepth() int { return len(a.queue) }
