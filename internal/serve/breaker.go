package serve

import (
	"sync"
	"time"

	"ceaff/internal/obs"
)

// BreakerState enumerates the circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed lets requests through and tracks outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between reclosing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value is unusable; start
// from DefaultBreakerConfig.
type BreakerConfig struct {
	// Window is the number of most-recent outcomes the failure rate is
	// computed over.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip — a single early failure must not open it.
	MinSamples int
	// FailureThreshold opens the breaker when the failure fraction of the
	// recorded window reaches it.
	FailureThreshold float64
	// Cooldown is how long the breaker stays open before letting a probe
	// through.
	Cooldown time.Duration
	// Now replaces the clock; tests inject a fake to drive the open →
	// half-open transition deterministically. Nil uses time.Now.
	Now func() time.Time
}

// DefaultBreakerConfig trips after ≥50% failures over the last 20 outcomes
// (at least 5 recorded) and probes again after 10 seconds.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           20,
		MinSamples:       5,
		FailureThreshold: 0.5,
		Cooldown:         10 * time.Second,
	}
}

// Breaker is a closed/open/half-open circuit breaker over a sliding window
// of request outcomes. Allow asks permission to attempt the guarded path;
// every granted attempt must report back through Record. Transitions are
// counted in the obs registry (serve.breaker.opened / half_opened /
// closed) and the current state is exported as the serve.breaker.state
// gauge (0 closed, 1 open, 2 half-open), making the state machine
// observable from /metrics alone.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring buffer of outcomes, true = failure
	next     int    // ring write position
	filled   int    // recorded outcomes, ≤ len(window)
	failures int    // failures currently in the window
	openedAt time.Time
	probing  bool // a half-open probe is outstanding

	stateGauge *obs.Gauge
	opened     *obs.Counter
	halfOpened *obs.Counter
	closed     *obs.Counter
	rejected   *obs.Counter
}

// NewBreaker builds a breaker in the closed state. reg may be nil.
func NewBreaker(cfg BreakerConfig, reg *obs.Registry) *Breaker {
	if cfg.Window < 1 {
		cfg.Window = DefaultBreakerConfig().Window
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = 1
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultBreakerConfig().FailureThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerConfig().Cooldown
	}
	b := &Breaker{
		cfg:        cfg,
		window:     make([]bool, cfg.Window),
		stateGauge: reg.Gauge("serve.breaker.state"),
		opened:     reg.Counter("serve.breaker.opened"),
		halfOpened: reg.Counter("serve.breaker.half_opened"),
		closed:     reg.Counter("serve.breaker.closed"),
		rejected:   reg.Counter("serve.breaker.rejected"),
	}
	b.stateGauge.Set(float64(BreakerClosed))
	return b
}

func (b *Breaker) now() time.Time {
	if b.cfg.Now != nil {
		return b.cfg.Now()
	}
	return time.Now()
}

// Allow reports whether the caller may attempt the guarded path. A true
// return obliges the caller to invoke Record with the attempt's outcome.
// In the open state Allow returns false until the cooldown elapses, at
// which point the breaker half-opens and exactly one caller is admitted as
// the probe; further callers are rejected until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setState(BreakerHalfOpen)
			b.probing = true
			return true
		}
		b.rejected.Inc()
		return false
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
		b.rejected.Inc()
		return false
	}
	return false
}

// Record reports the outcome of an attempt admitted by Allow. In the
// closed state it feeds the sliding window and trips the breaker when the
// failure rate crosses the threshold; in the half-open state it resolves
// the probe — success recloses (and clears the window), failure reopens.
// Outcomes arriving after the state changed under the attempt (a slow
// closed-state request completing once the breaker is already open) are
// dropped: the window must only describe the current closed period.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.push(!success)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureThreshold*float64(b.filled) {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if success {
			b.reset()
			b.setState(BreakerClosed)
			b.closed.Inc()
		} else {
			b.trip()
		}
	case BreakerOpen:
		// Stale completion from before the trip; ignore.
	}
}

// push writes one outcome into the ring.
func (b *Breaker) push(failure bool) {
	if b.filled == len(b.window) && b.window[b.next] {
		b.failures-- // evicted outcome was a failure
	}
	b.window[b.next] = failure
	b.next = (b.next + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if failure {
		b.failures++
	}
}

// trip moves to the open state and stamps the cooldown clock.
func (b *Breaker) trip() {
	b.reset()
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.probing = false
	b.opened.Inc()
}

// reset clears the outcome window.
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled, b.failures = 0, 0, 0
}

func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.stateGauge.Set(float64(s))
	if s == BreakerHalfOpen {
		b.halfOpened.Inc()
	}
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
