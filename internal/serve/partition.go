package serve

import (
	"context"
	"fmt"
	"strconv"

	"ceaff/internal/core"
	"ceaff/internal/mat"
	"ceaff/internal/match"
)

// Partition is one replica's share of the source space: the fused rows,
// per-feature rows and precomputed greedy argmaxes of the sources a
// consistent-hash ring assigns to partition index of total. It is the
// storage unit behind both the in-process ShardedEngine and the
// cross-process replica daemon (`ceaffd -replica -partition i/N`), where it
// answers the row-gather protocol the Router drives over a Transport.
//
// A Partition keeps the full name tables (they are small relative to the
// score matrices and every replica needs them to resolve keys and serve
// meta), but only its own rows of every matrix — a replica holding
// partition i/N stores ~1/N of the engine's score memory.
//
// Partition also implements Aligner restricted to its owned rows, so a
// replica process serves /v1/align and /readyz for its own sources with the
// ordinary Server machinery; queries naming rows it does not own are
// client errors, not panics.
type Partition struct {
	index, total int
	version      uint64

	rows  []int       // owned global source rows, ascending
	local map[int]int // global source row → position in rows

	fused      *mat.Dense // len(rows) × nTargets
	ms, mn, ml *mat.Dense // per-feature rows (nil when the feature degraded)
	greedy     []int      // per-local-row precomputed argmax (global target)

	srcNames []string
	tgtNames []string
	byName   map[string]int
	topK     int
}

// partitionOwnership maps every source row to its owning partition using
// the same ring and key grammar as the sharded engine, so an in-process
// ShardedEngine, a local-transport Router and a multi-process Router all
// agree on who owns what.
func partitionOwnership(srcNames []string, total int) []int {
	ring := buildRing(total)
	owner := make([]int, len(srcNames))
	for row := range srcNames {
		// Hash the name with the row appended so duplicate names spread
		// deterministically instead of piling onto one partition.
		owner[row] = ringOwner(ring, srcNames[row]+"\x00"+strconv.Itoa(row))
	}
	return owner
}

// NewPartition extracts partition index of total from a fully built engine.
// The engine is not retained; the partition copies only its own rows, so a
// replica process can release the full engine after extraction.
func NewPartition(e *Engine, index, total int) (*Partition, error) {
	if total < 1 {
		return nil, fmt.Errorf("serve: partition count %d < 1", total)
	}
	if index < 0 || index >= total {
		return nil, fmt.Errorf("serve: partition index %d out of range [0,%d)", index, total)
	}
	owner := partitionOwnership(e.srcNames, total)
	var rows []int
	for row, o := range owner {
		if o == index {
			rows = append(rows, row)
		}
	}
	p := &Partition{
		index:    index,
		total:    total,
		rows:     rows,
		local:    make(map[int]int, len(rows)),
		fused:    copyMatrixRows(e.fused, rows),
		greedy:   make([]int, len(rows)),
		srcNames: e.srcNames,
		tgtNames: e.tgtNames,
		byName:   e.byName,
		topK:     e.topK,
	}
	if e.feats != nil {
		p.ms = copyMatrixRows(e.feats.Ms, rows)
		p.mn = copyMatrixRows(e.feats.Mn, rows)
		p.ml = copyMatrixRows(e.feats.Ml, rows)
	}
	for pos, r := range rows {
		p.local[r] = pos
		p.greedy[pos] = e.greedy[r]
	}
	return p, nil
}

// NewPartitions extracts all partitions of a total-way split at once — the
// construction path of the in-process ShardedEngine and of local-transport
// routers in tests.
func NewPartitions(e *Engine, total int) ([]*Partition, error) {
	if total < 1 {
		return nil, fmt.Errorf("serve: partition count %d < 1", total)
	}
	parts := make([]*Partition, total)
	for i := 0; i < total; i++ {
		p, err := NewPartition(e, i, total)
		if err != nil {
			return nil, err
		}
		parts[i] = p
	}
	return parts, nil
}

// copyMatrixRows copies the selected global rows of src into a fresh
// len(rows) × src.Cols matrix; nil in, nil out (degraded features).
func copyMatrixRows(src *mat.Dense, rows []int) *mat.Dense {
	if src == nil {
		return nil
	}
	out := mat.NewDense(len(rows), src.Cols)
	for p, r := range rows {
		copy(out.Row(p), src.Row(r))
	}
	return out
}

// Index reports which partition this is.
func (p *Partition) Index() int { return p.index }

// Total reports the partition count of the split this partition belongs to.
func (p *Partition) Total() int { return p.total }

// Version reports the engine version this partition was extracted from.
func (p *Partition) Version() uint64 { return p.version }

// SetVersion stamps the engine version the partition's rows reflect; the
// replica daemon sets it before publishing, and the gather protocol refuses
// requests that expect a different version (the version-skew rule).
func (p *Partition) SetVersion(v uint64) { p.version = v }

// Owned reports how many source rows this partition holds.
func (p *Partition) Owned() int { return len(p.rows) }

// Owns reports whether the partition holds source row.
func (p *Partition) Owns(row int) bool {
	_, ok := p.local[row]
	return ok
}

// featMask reports which per-feature matrices the partition holds.
func (p *Partition) featMask() byte {
	var m byte
	if p.ms != nil {
		m |= featMs
	}
	if p.mn != nil {
		m |= featMn
	}
	if p.ml != nil {
		m |= featMl
	}
	return m
}

// Meta describes the partition to a router: the split geometry, the engine
// version, and the global name tables every decision needs.
func (p *Partition) Meta() *ReplicaMeta {
	return &ReplicaMeta{
		Partition: p.index,
		Total:     p.total,
		Version:   p.version,
		TopK:      p.topK,
		NamesFP:   namesFingerprint(p.srcNames, p.tgtNames),
		SrcNames:  p.srcNames,
		TgtNames:  p.tgtNames,
	}
}

// GatherLocal answers a row-gather against this partition's storage: the
// fused row, greedy argmax and (optionally) per-feature rows of every
// requested global source row. The returned slices alias partition memory
// and must be treated as read-only. wantVersion enforces the version-skew
// rule: a router must never mix rows from different engine versions in one
// decision, so a partition that has moved on refuses rather than answers.
func (p *Partition) GatherLocal(wantVersion uint64, rows []int, withFeatures bool) (*ShardRows, error) {
	if wantVersion != p.version {
		return nil, fmt.Errorf("%w: partition %d/%d at version %d, gather expects %d",
			ErrVersionSkew, p.index, p.total, p.version, wantVersion)
	}
	sr := &ShardRows{
		Version:  p.version,
		NTargets: len(p.tgtNames),
		Greedy:   make([]int, len(rows)),
		Fused:    make([][]float64, len(rows)),
	}
	mask := p.featMask()
	if withFeatures && mask != 0 {
		if p.ms != nil {
			sr.Ms = make([][]float64, len(rows))
		}
		if p.mn != nil {
			sr.Mn = make([][]float64, len(rows))
		}
		if p.ml != nil {
			sr.Ml = make([][]float64, len(rows))
		}
	}
	for i, row := range rows {
		local, ok := p.local[row]
		if !ok {
			return nil, fmt.Errorf("%w: source %d not owned by partition %d/%d",
				ErrNotOwned, row, p.index, p.total)
		}
		sr.Greedy[i] = p.greedy[local]
		sr.Fused[i] = p.fused.Row(local)
		if withFeatures {
			if sr.Ms != nil {
				sr.Ms[i] = p.ms.Row(local)
			}
			if sr.Mn != nil {
				sr.Mn[i] = p.mn.Row(local)
			}
			if sr.Ml != nil {
				sr.Ml[i] = p.ml.Row(local)
			}
		}
	}
	return sr, nil
}

// --- Aligner over the owned rows ---

// NumSources implements Aligner: the size of the *global* source universe.
func (p *Partition) NumSources() int { return len(p.srcNames) }

// Resolve implements Aligner with the same key grammar as Engine.
func (p *Partition) Resolve(key string) (int, bool) {
	if i, err := strconv.Atoi(key); err == nil {
		if i >= 0 && i < len(p.srcNames) {
			return i, true
		}
		return 0, false
	}
	i, ok := p.byName[key]
	return i, ok
}

// Strategies implements Aligner: owned rows gather densely, so every
// registered strategy applies.
func (p *Partition) Strategies() []string { return match.StrategyNames() }

// validOwnedRows rejects out-of-range, duplicate and un-owned rows.
func (p *Partition) validOwnedRows(rows []int) error {
	seen := make(map[int]bool, len(rows))
	for _, r := range rows {
		if r < 0 || r >= len(p.srcNames) {
			return fmt.Errorf("serve: source %d out of range [0,%d)", r, len(p.srcNames))
		}
		if seen[r] {
			return fmt.Errorf("serve: duplicate source %d", r)
		}
		seen[r] = true
		if !p.Owns(r) {
			return fmt.Errorf("%w: source %d not owned by partition %d/%d", ErrNotOwned, r, p.index, p.total)
		}
	}
	return nil
}

// AlignCollective implements Aligner for owned rows: local gather, one
// collective decision — bit-identical to the unsharded engine restricted to
// the same rows.
func (p *Partition) AlignCollective(ctx context.Context, rows []int, strategy string) ([]Decision, error) {
	st, err := strategyFor(strategy)
	if err != nil {
		return nil, err
	}
	if err := p.validOwnedRows(rows); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sub := mat.GetDense(len(rows), len(p.tgtNames))
	defer mat.PutDense(sub)
	for i, row := range rows {
		copy(sub.Row(i), p.fused.Row(p.local[row]))
	}
	asn, err := core.AlignGatheredStrategy(ctx, sub, p.topK, st)
	if err != nil {
		return nil, err
	}
	out := make([]Decision, len(rows))
	for i, row := range rows {
		out[i] = decisionFromRow(p.srcNames, p.tgtNames, row, p.fused.Row(p.local[row]), asn[i])
	}
	return out, nil
}

// AlignGreedy implements Aligner from the precomputed ranking; rows the
// partition does not own come back unmatched (greedy is infallible by
// contract).
func (p *Partition) AlignGreedy(rows []int) []Decision {
	out := make([]Decision, len(rows))
	for i, row := range rows {
		if row < 0 || row >= len(p.srcNames) || !p.Owns(row) {
			out[i] = Decision{SourceIndex: row, TargetIndex: -1}
			if row >= 0 && row < len(p.srcNames) {
				out[i].Source = p.srcNames[row]
			}
			continue
		}
		local := p.local[row]
		out[i] = decisionFromRow(p.srcNames, p.tgtNames, row, p.fused.Row(local), p.greedy[local])
	}
	return out
}

// Candidates implements Aligner for owned rows with per-feature breakdowns.
func (p *Partition) Candidates(ctx context.Context, row, k int) ([]Candidate, error) {
	if row < 0 || row >= len(p.srcNames) {
		return nil, fmt.Errorf("serve: source %d out of range [0,%d)", row, len(p.srcNames))
	}
	if !p.Owns(row) {
		return nil, fmt.Errorf("%w: source %d not owned by partition %d/%d", ErrNotOwned, row, p.index, p.total)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	local := p.local[row]
	return candidatesFromRows(p.tgtNames, p.fused.Row(local), k, featureRow{
		ms: matRowOrNil(p.ms, local), mn: matRowOrNil(p.mn, local), ml: matRowOrNil(p.ml, local),
	}), nil
}

// matRowOrNil returns m.Row(i), or nil for an absent feature matrix.
func matRowOrNil(m *mat.Dense, i int) []float64 {
	if m == nil {
		return nil
	}
	return m.Row(i)
}

// featureRow bundles one source's per-feature rows (nil = degraded/absent).
type featureRow struct{ ms, mn, ml []float64 }

// decisionFromRow assembles the Decision for source row matched to target j
// from the row's fused scores — the single shared implementation behind
// Engine, ShardedEngine, Partition and Router, so every topology produces
// the same fields, rank semantics and unilateral marking.
func decisionFromRow(srcNames, tgtNames []string, row int, fusedRow []float64, j int) Decision {
	d := Decision{SourceIndex: row, Source: srcNames[row], TargetIndex: -1}
	if j < 0 {
		return d
	}
	score := fusedRow[j]
	d.TargetIndex = j
	d.Target = tgtNames[j]
	d.Score = score
	r := 1
	for _, v := range fusedRow {
		if v > score {
			r++
		}
	}
	d.Rank = r
	d.Matched = true
	d.Unilateral = rowUnilateral(fusedRow, j)
	return d
}

// candidatesFromRows builds a top-k candidate list from one source's fused
// row and per-feature rows — shared by Partition and Router so remote
// candidate answers are bit-identical to local ones.
func candidatesFromRows(tgtNames []string, fusedRow []float64, k int, feats featureRow) []Candidate {
	if k < 1 {
		k = 1
	}
	rowView := &mat.Dense{Rows: 1, Cols: len(fusedRow), Data: fusedRow}
	top := mat.TopKRow(rowView, k)[0]
	out := make([]Candidate, len(top))
	for r, j := range top {
		features := map[string]float64{}
		for _, f := range []struct {
			name string
			row  []float64
		}{
			{"structural", feats.ms},
			{"semantic", feats.mn},
			{"string", feats.ml},
		} {
			if f.row != nil {
				features[f.name] = f.row[j]
			}
		}
		out[r] = Candidate{
			TargetIndex: j,
			Target:      tgtNames[j],
			Score:       fusedRow[j],
			Rank:        r + 1,
			Features:    features,
		}
	}
	return out
}
