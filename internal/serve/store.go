package serve

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"

	"ceaff/internal/align"
	"ceaff/internal/core"
	"ceaff/internal/kg"
	"ceaff/internal/wal"
)

// MutationError reports that mutation Index of a batch failed validation —
// the whole batch is rejected and no state (in memory or in the WAL)
// changed. The HTTP layer maps it to 400.
type MutationError struct {
	Index int
	Err   error
}

func (e *MutationError) Error() string {
	return fmt.Sprintf("mutation %d: %v", e.Index, e.Err)
}

func (e *MutationError) Unwrap() error { return e.Err }

// BaseFingerprint summarizes the base corpus an engine and its WAL are
// built from: an FNV-1a hash over the KG names and the entity/relation/
// triple/seed/test counts. It binds a mutation log to its base — replaying
// onto a different corpus (changed -dataset, -scale or -splitseed) is
// refused by wal.Open instead of silently diverging.
func BaseFingerprint(in *core.Input) uint64 {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w(in.G1.Name, in.G2.Name)
	for _, n := range []int{
		in.G1.NumEntities(), in.G1.NumRelations(), in.G1.NumTriples(),
		in.G2.NumEntities(), in.G2.NumRelations(), in.G2.NumTriples(),
		len(in.Seeds), len(in.Tests),
	} {
		w(strconv.Itoa(n))
	}
	return h.Sum64()
}

// Store holds the living corpus state behind the serving daemon: the base
// input plus every durably logged mutation, applied in sequence order. It
// is the single writer of that state; rebuilds take immutable snapshots
// while new mutations keep arriving.
//
// The projection is rebuilt by cloning before each batch applies, so a
// batch is all-or-nothing: if any mutation fails validation — checked with
// internal/kg's checked inserts — the projection is untouched and nothing
// reaches the WAL. Because both the boot replay and the online path apply
// the identical mutation sequence to the identical base, the projected
// state (and every engine built from it) is bit-deterministic.
type Store struct {
	mu   sync.Mutex
	proj *core.Input // base + all applied mutations
	seq  uint64      // seq of the last applied mutation
}

// NewStore builds the projected state: base cloned, then every replayed WAL
// record applied in order. A replayed record that no longer validates means
// the log and the base have diverged (e.g. the corpus flags changed in a
// way the fingerprint missed), which is unrecoverable and returned as an
// error rather than served silently wrong.
func NewStore(base *core.Input, replay []wal.Record) (*Store, error) {
	s := &Store{proj: base.Clone()}
	for _, r := range replay {
		if err := applyMutation(s.proj, r.Mut); err != nil {
			return nil, fmt.Errorf("serve: wal replay seq %d: %w", r.Seq, err)
		}
		s.seq = r.Seq
	}
	return s, nil
}

// Seq returns the sequence number of the last applied mutation.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Snapshot returns an immutable deep copy of the projected input and the
// sequence number it reflects. Rebuilds consume snapshots so concurrent
// mutations never race a running pipeline.
func (s *Store) Snapshot() (*core.Input, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proj.Clone(), s.seq
}

// Mutate validates and applies muts as one atomic batch: they are staged on
// a clone of the projection, handed to commit (the WAL append — the batch
// becomes durable there, or not at all), and only on its success does the
// staged clone replace the projection. Validation failures return a
// *MutationError and leave every layer untouched; commit failures discard
// the staged clone.
func (s *Store) Mutate(muts []wal.Mutation, commit func([]wal.Mutation) (first, last uint64, err error)) (first, last uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	staged := s.proj.Clone()
	for i, m := range muts {
		if err := applyMutation(staged, m); err != nil {
			return 0, 0, &MutationError{Index: i, Err: err}
		}
	}
	first, last, err = commit(muts)
	if err != nil {
		return 0, 0, err
	}
	if first != s.seq+1 {
		// The WAL and the projection disagree about history; refusing to
		// advance keeps the divergence visible instead of compounding it.
		return 0, 0, fmt.Errorf("serve: wal assigned seq %d, store expected %d", first, s.seq+1)
	}
	s.proj, s.seq = staged, last
	return first, last, nil
}

// applyMutation validates one mutation (shape via wal.Mutation.Validate,
// semantics against the live KG state) and applies it to in: removals must
// hit existing facts, seed links must reference existing entities and not
// duplicate existing links. Additions intern new entity/relation names
// deterministically in arrival order.
func applyMutation(in *core.Input, m wal.Mutation) error {
	if err := m.Validate(); err != nil {
		return err
	}
	switch m.Op {
	case wal.OpAddTriple:
		g := pickKG(in, m.KG)
		h, r, t := g.AddEntity(m.Head), g.AddRelation(m.Rel), g.AddEntity(m.Tail)
		return g.CheckedAddTriple(h, r, t)

	case wal.OpRemoveTriple:
		g := pickKG(in, m.KG)
		h, ok := g.Entity(m.Head)
		if !ok {
			return fmt.Errorf("kg %d has no entity %q", m.KG, m.Head)
		}
		r, ok := g.Relation(m.Rel)
		if !ok {
			return fmt.Errorf("kg %d has no relation %q", m.KG, m.Rel)
		}
		t, ok := g.Entity(m.Tail)
		if !ok {
			return fmt.Errorf("kg %d has no entity %q", m.KG, m.Tail)
		}
		if !g.RemoveTriple(h, r, t) {
			return fmt.Errorf("kg %d has no triple (%q, %q, %q)", m.KG, m.Head, m.Rel, m.Tail)
		}
		return nil

	case wal.OpAddSeed:
		u, v, err := resolveSeed(in, m)
		if err != nil {
			return err
		}
		for _, p := range in.Seeds {
			if p.U == u && p.V == v {
				return fmt.Errorf("seed link (%q, %q) already present", m.Source, m.Target)
			}
		}
		in.Seeds = append(in.Seeds, align.Pair{U: u, V: v})
		return nil

	case wal.OpRemoveSeed:
		u, v, err := resolveSeed(in, m)
		if err != nil {
			return err
		}
		for i, p := range in.Seeds {
			if p.U == u && p.V == v {
				in.Seeds = append(in.Seeds[:i], in.Seeds[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("no seed link (%q, %q)", m.Source, m.Target)

	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
}

func pickKG(in *core.Input, which int) *kg.KG {
	if which == 1 {
		return in.G1
	}
	return in.G2 // Validate already confined which to {1, 2}
}

func resolveSeed(in *core.Input, m wal.Mutation) (u, v kg.EntityID, err error) {
	u, ok := in.G1.Entity(m.Source)
	if !ok {
		return 0, 0, fmt.Errorf("source KG has no entity %q", m.Source)
	}
	v, ok = in.G2.Entity(m.Target)
	if !ok {
		return 0, 0, fmt.Errorf("target KG has no entity %q", m.Target)
	}
	return u, v, nil
}
