package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// routerTestConfig returns a RouterConfig tuned for tests: no background
// probing (tests drive probeOnce by hand), fast bounded retries, breakers
// that half-open immediately so recovery needs no wall-clock waits, and no
// hedging unless the test opts in.
func routerTestConfig() RouterConfig {
	cfg := DefaultRouterConfig()
	cfg.ProbeInterval = time.Hour
	cfg.ProbeTimeout = 5 * time.Second
	cfg.GatherTimeout = 5 * time.Second
	cfg.Retry = robust.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2}
	cfg.Breaker = BreakerConfig{Window: 4, MinSamples: 3, FailureThreshold: 0.5, Cooldown: time.Nanosecond}
	cfg.DisableHedge = true
	return cfg
}

// replicaServer boots a full Server exposing partition p over HTTP — both
// the ordinary query surface and the POST /v1/shard gather protocol, like a
// real `ceaffd -replica` process.
func replicaServer(t *testing.T, p *Partition) *httptest.Server {
	t.Helper()
	cfg := testServerConfig()
	cfg.CacheSize = 0
	srv := NewServer(cfg, obs.NewRegistry())
	srv.SetAligner(p)
	srv.SetPartition(p)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getRaw(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRouterBitIdentity is the tentpole's correctness pin: the same query
// set served through four topologies — the unsharded engine, the in-process
// ShardedEngine, a Router over in-process LocalTransports, and a Router
// over the framed HTTP gather protocol against real replica servers — must
// produce byte-identical /v1/align and candidates responses. Runs in the
// GOMAXPROCS=1/4 determinism suite.
func TestRouterBitIdentity(t *testing.T) {
	const n, nparts = 24, 3
	base := literalEngine(coalesceTestMatrix(n))
	ctx := context.Background()

	se, err := NewShardedEngine(base, nparts)
	if err != nil {
		t.Fatal(err)
	}

	localParts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	localTs := make([]Transport, nparts)
	for i, p := range localParts {
		localTs[i] = &LocalTransport{P: p}
	}
	localRouter, err := NewRouter(ctx, routerTestConfig(), localTs, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer localRouter.Close()

	httpParts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	httpTs := make([]Transport, nparts)
	for i, p := range httpParts {
		httpTs[i] = &HTTPTransport{Base: replicaServer(t, p).URL}
	}
	httpRouter, err := NewRouter(ctx, routerTestConfig(), httpTs, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer httpRouter.Close()

	mk := func(a Aligner) *httptest.Server {
		cfg := testServerConfig()
		cfg.CacheSize = 0
		srv := NewServer(cfg, obs.NewRegistry())
		srv.SetAligner(a)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	servers := map[string]*httptest.Server{
		"engine":      mk(base),
		"sharded":     mk(se),
		"localRouter": mk(localRouter),
		"httpRouter":  mk(httpRouter),
	}

	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nrows := 1 + r.Intn(6)
		seen := map[int]bool{}
		var keys []string
		var rows []int
		for len(rows) < nrows {
			row := r.Intn(n)
			if !seen[row] {
				seen[row] = true
				rows = append(rows, row)
				keys = append(keys, fmt.Sprint(row))
			}
		}
		wantStatus, want := postAlignRaw(t, servers["engine"].Client(), servers["engine"].URL, keys...)
		if wantStatus != http.StatusOK {
			t.Fatalf("engine answered %d: %s", wantStatus, want)
		}
		for name, ts := range servers {
			if name == "engine" {
				continue
			}
			status, got := postAlignRaw(t, ts.Client(), ts.URL, keys...)
			if status != http.StatusOK || string(got) != string(want) {
				t.Fatalf("trial %d topology %s keys %v: status %d\n got %s\nwant %s",
					trial, name, keys, status, got, want)
			}
		}

		candURL := fmt.Sprintf("/v1/entity/%d/candidates?k=%d", rows[0], 1+r.Intn(5))
		wantStatus, want = getRaw(t, servers["engine"].Client(), servers["engine"].URL+candURL)
		if wantStatus != http.StatusOK {
			t.Fatalf("engine candidates answered %d: %s", wantStatus, want)
		}
		for name, ts := range servers {
			if name == "engine" {
				continue
			}
			status, got := getRaw(t, ts.Client(), ts.URL+candURL)
			if status != http.StatusOK || string(got) != string(want) {
				t.Fatalf("trial %d topology %s %s: status %d\n got %s\nwant %s",
					trial, name, candURL, status, got, want)
			}
		}

		// The greedy fallback path gathers too; it must match the engine's
		// precomputed ranking exactly.
		wantG := base.AlignGreedy(rows)
		for name, rt := range map[string]*Router{"localRouter": localRouter, "httpRouter": httpRouter} {
			if got := rt.AlignGreedy(rows); !reflect.DeepEqual(got, wantG) {
				t.Fatalf("%s greedy rows %v:\n got %+v\nwant %+v", name, rows, got, wantG)
			}
		}
	}
}

// TestRouterCoherenceValidation pins NewRouter's fleet checks: a router
// must refuse to assemble replicas that disagree on split, corpus or
// engine version, or that leave a partition uncovered — and must accept
// duplicate announcements as standbys.
func TestRouterCoherenceValidation(t *testing.T) {
	base := literalEngine(coalesceTestMatrix(12))
	ctx := context.Background()
	cfg := routerTestConfig()
	cfg.Retry.MaxAttempts = 1

	if _, err := NewRouter(ctx, cfg, nil, obs.NewRegistry()); err == nil {
		t.Fatal("router accepted zero transports")
	}

	parts, err := NewPartitions(base, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Version skew at assembly time.
	skewed, err := NewPartitions(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	skewed[1].SetVersion(9)
	if _, err := NewRouter(ctx, cfg,
		[]Transport{&LocalTransport{P: skewed[0]}, &LocalTransport{P: skewed[1]}},
		obs.NewRegistry()); err == nil {
		t.Fatal("router accepted replicas at different engine versions")
	}

	// Uncovered partition.
	if _, err := NewRouter(ctx, cfg,
		[]Transport{&LocalTransport{P: parts[0]}}, obs.NewRegistry()); err == nil {
		t.Fatal("router accepted a fleet with partition 1 missing")
	}

	// Different corpus (names fingerprint).
	other := literalEngine(coalesceTestMatrix(13))
	otherParts, err := NewPartitions(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(ctx, cfg,
		[]Transport{&LocalTransport{P: parts[0]}, &LocalTransport{P: otherParts[1]}},
		obs.NewRegistry()); err == nil {
		t.Fatal("router accepted replicas built from different corpora")
	}

	// Duplicate announcement becomes a standby.
	standbyParts, err := NewPartitions(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(ctx, cfg, []Transport{
		&LocalTransport{P: parts[0]},
		&LocalTransport{P: parts[1]},
		&LocalTransport{P: standbyParts[0]},
	}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := len(rt.replicas[0].links); got != 2 {
		t.Fatalf("partition 0 has %d links, want primary + standby", got)
	}
	if rt.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d, want 2", rt.NumPartitions())
	}
}

// TestRouterCandidatesLostPartition pins the candidates contract: a lost
// partition is a typed error there — the endpoint has no partial shape.
func TestRouterCandidatesLostPartition(t *testing.T) {
	base := literalEngine(coalesceTestMatrix(12))
	parts, err := NewPartitions(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := routerTestConfig()
	cfg.GatherTimeout = 100 * time.Millisecond
	rt, err := NewRouter(context.Background(), cfg,
		[]Transport{&LocalTransport{P: parts[0]}, &LocalTransport{P: parts[1]}},
		obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	st := rt.state.Load()
	row := 0
	// Replace the owning partition's transport with a dead HTTP one.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()
	rt.replicas[st.owner[row]].links[0].t = &HTTPTransport{Base: dead.URL}

	if _, err := rt.Candidates(context.Background(), row, 3); !errors.Is(err, ErrPartitionLost) {
		t.Fatalf("candidates error %v is not ErrPartitionLost", err)
	}
}
