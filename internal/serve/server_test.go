package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ceaff/internal/match"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// waitFor polls cond until it holds or the deadline passes. It sequences
// observable state transitions in tests; correctness never depends on the
// poll interval, only liveness does.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// stubAligner is a deterministic Aligner for server tests: it can block on
// a gate channel (honouring ctx), fail with a fixed error, and reports how
// often and how concurrently the collective path ran.
type stubAligner struct {
	n     int
	gate  chan struct{} // non-nil: AlignCollective blocks until closed
	fail  atomic.Bool   // AlignCollective returns an error
	calls atomic.Int64  // AlignCollective invocations

	inFlight atomic.Int64
	maxSeen  atomic.Int64
}

func newStubAligner(n int) *stubAligner { return &stubAligner{n: n} }

func (s *stubAligner) NumSources() int { return s.n }

func (s *stubAligner) Resolve(key string) (int, bool) {
	i, err := strconv.Atoi(key)
	if err != nil || i < 0 || i >= s.n {
		return 0, false
	}
	return i, true
}

func (s *stubAligner) decisions(rows []int, rank int) []Decision {
	out := make([]Decision, len(rows))
	for p, row := range rows {
		out[p] = Decision{
			SourceIndex: row, Source: fmt.Sprintf("src%d", row),
			TargetIndex: row, Target: fmt.Sprintf("tgt%d", row),
			Score: 1, Rank: rank, Matched: true,
		}
	}
	return out
}

func (s *stubAligner) Strategies() []string { return match.StrategyNames() }

func (s *stubAligner) AlignCollective(ctx context.Context, rows []int, _ string) ([]Decision, error) {
	s.calls.Add(1)
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		max := s.maxSeen.Load()
		if cur <= max || s.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.fail.Load() {
		return nil, errors.New("stub: collective decision failed")
	}
	return s.decisions(rows, 1), nil
}

func (s *stubAligner) AlignGreedy(rows []int) []Decision { return s.decisions(rows, 2) }

func (s *stubAligner) Candidates(_ context.Context, row, k int) ([]Candidate, error) {
	out := make([]Candidate, 0, k)
	for r := 0; r < k && r < s.n; r++ {
		out = append(out, Candidate{
			TargetIndex: r, Target: fmt.Sprintf("tgt%d", r),
			Score: 1 - float64(r), Rank: r + 1,
			Features: map[string]float64{"string": 1 - float64(r)},
		})
	}
	return out, nil
}

func alignBody(keys ...string) *bytes.Reader {
	b, _ := json.Marshal(alignRequest{Sources: keys})
	return bytes.NewReader(b)
}

func postAlign(t *testing.T, client *http.Client, url string, hdr map[string]string, keys ...string) (*http.Response, alignResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/align", alignBody(keys...))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body alignResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, body
}

func testServerConfig() Config {
	cfg := DefaultServerConfig()
	cfg.Breaker.Now = func() time.Time { return time.Unix(0, 0) }
	// The lifecycle/flood/breaker tests pin the direct execution path:
	// gated stubs count concurrent AlignCollective calls, which coalescing
	// deliberately serializes. The coalescer has its own suite.
	cfg.CoalesceWindow = 0
	return cfg
}

// TestServerFloodShedsAndBoundsInFlight floods a server whose collective
// path is gated shut: exactly MaxInFlight+MaxQueue requests may be
// admitted, everything beyond is shed with 429 + Retry-After, and the
// stub never observes more than MaxInFlight concurrent executions.
func TestServerFloodShedsAndBoundsInFlight(t *testing.T) {
	const maxInFlight, maxQueue, flood = 2, 2, 10
	reg := obs.NewRegistry()
	cfg := testServerConfig()
	cfg.MaxInFlight, cfg.MaxQueue = maxInFlight, maxQueue
	cfg.RetryAfter = 2 * time.Second
	srv := NewServer(cfg, reg)
	stub := newStubAligner(16)
	stub.gate = make(chan struct{})
	srv.SetAligner(stub)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	type outcome struct {
		status     int
		retryAfter string
		degraded   bool
	}
	results := make(chan outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postAlign(t, client, ts.URL, nil, strconv.Itoa(i))
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), body.Degraded}
		}(i)
	}

	// All excess requests must be shed before anything completes: the gate
	// is still shut, so exactly flood-(maxInFlight+maxQueue) sheds appear.
	waitFor(t, func() bool {
		return reg.Counter("serve.shed").Value() == flood-(maxInFlight+maxQueue)
	})
	if got := srv.admission.InFlight(); got != maxInFlight {
		t.Fatalf("in-flight %d while gated, want %d", got, maxInFlight)
	}
	close(stub.gate)
	wg.Wait()
	close(results)

	var ok, shed int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			if r.degraded {
				t.Error("healthy collective request answered degraded")
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter != "2" {
				t.Errorf("shed response Retry-After = %q, want \"2\"", r.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok != maxInFlight+maxQueue || shed != flood-(maxInFlight+maxQueue) {
		t.Fatalf("ok=%d shed=%d, want %d/%d", ok, shed, maxInFlight+maxQueue, flood-(maxInFlight+maxQueue))
	}
	if got := stub.maxSeen.Load(); got > maxInFlight {
		t.Fatalf("collective path saw %d concurrent executions, bound is %d", got, maxInFlight)
	}
	waitFor(t, func() bool { return srv.admission.InFlight() == 0 })
}

// TestServerBreakerFallback drives the breaker through its full cycle over
// HTTP using deterministic failures: collective failures degrade responses
// and trip the breaker, an open breaker skips the collective path
// entirely, and a successful probe after the cooldown recloses it.
func TestServerBreakerFallback(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &fakeClock{t: time.Unix(0, 0)}
	cfg := testServerConfig()
	cfg.Breaker = BreakerConfig{
		Window: 4, MinSamples: 2, FailureThreshold: 0.5,
		Cooldown: 10 * time.Second, Now: clock.now,
	}
	srv := NewServer(cfg, reg)
	stub := newStubAligner(8)
	srv.SetAligner(stub)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Two failing collective decisions: both answered degraded, breaker
	// trips on the second.
	stub.fail.Store(true)
	for i := 0; i < 2; i++ {
		resp, body := postAlign(t, client, ts.URL, nil, "0", "1")
		if resp.StatusCode != http.StatusOK || !body.Degraded {
			t.Fatalf("failing collective: status %d degraded %v, want 200/degraded", resp.StatusCode, body.Degraded)
		}
		for _, d := range body.Results {
			if d.Rank != 2 {
				t.Fatalf("fallback decision rank %d, want greedy stub rank 2", d.Rank)
			}
		}
	}
	if srv.breaker.State() != BreakerOpen {
		t.Fatalf("breaker state %v after failures, want open", srv.breaker.State())
	}
	if got := reg.Counter("serve.breaker.opened").Value(); got != 1 {
		t.Fatalf("opened counter %d, want 1", got)
	}

	// Open breaker: collective path not even attempted.
	before := stub.calls.Load()
	resp, body := postAlign(t, client, ts.URL, nil, "2")
	if resp.StatusCode != http.StatusOK || !body.Degraded {
		t.Fatalf("open-breaker request: status %d degraded %v", resp.StatusCode, body.Degraded)
	}
	if stub.calls.Load() != before {
		t.Fatal("open breaker still invoked the collective path")
	}
	if got := reg.Counter("serve.fallback").Value(); got != 3 {
		t.Fatalf("fallback counter %d, want 3", got)
	}

	// Cooldown elapses; the probe succeeds and the breaker recloses.
	stub.fail.Store(false)
	clock.advance(10 * time.Second)
	resp, body = postAlign(t, client, ts.URL, nil, "3")
	if resp.StatusCode != http.StatusOK || body.Degraded {
		t.Fatalf("probe request: status %d degraded %v, want 200/undegraded", resp.StatusCode, body.Degraded)
	}
	if srv.breaker.State() != BreakerClosed {
		t.Fatalf("breaker state %v after probe, want closed", srv.breaker.State())
	}
	if got := reg.Counter("serve.breaker.closed").Value(); got != 1 {
		t.Fatalf("closed counter %d, want 1", got)
	}
}

// TestServerForcedCollectiveFault pins the serve.collective fault site:
// one armed fault degrades exactly one response without touching the
// engine.
func TestServerForcedCollectiveFault(t *testing.T) {
	t.Cleanup(robust.Reset)
	srv := NewServer(testServerConfig(), obs.NewRegistry())
	stub := newStubAligner(4)
	srv.SetAligner(stub)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	robust.Arm(robust.Fault{Site: FaultCollective})
	resp, body := postAlign(t, ts.Client(), ts.URL, nil, "0")
	if resp.StatusCode != http.StatusOK || !body.Degraded {
		t.Fatalf("status %d degraded %v, want 200/degraded", resp.StatusCode, body.Degraded)
	}
	if stub.calls.Load() != 0 {
		t.Fatal("injected fault still reached the engine")
	}
	resp, body = postAlign(t, ts.Client(), ts.URL, nil, "0")
	if resp.StatusCode != http.StatusOK || body.Degraded {
		t.Fatalf("post-fault request: status %d degraded %v, want clean 200", resp.StatusCode, body.Degraded)
	}
}

// TestServerPanicIsolation pins per-request panic isolation: an armed
// panic fault yields one 500 and a counter increment; the next request on
// the same server succeeds.
func TestServerPanicIsolation(t *testing.T) {
	t.Cleanup(robust.Reset)
	reg := obs.NewRegistry()
	srv := NewServer(testServerConfig(), reg)
	srv.SetAligner(newStubAligner(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	robust.Arm(robust.Fault{Site: FaultPanic})
	resp, _ := postAlign(t, ts.Client(), ts.URL, nil, "0")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status %d, want 500", resp.StatusCode)
	}
	if got := reg.Counter("serve.panics").Value(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
	if got := srv.admission.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after panic, want 0 (slot leaked)", got)
	}
	resp, body := postAlign(t, ts.Client(), ts.URL, nil, "1")
	if resp.StatusCode != http.StatusOK || body.Degraded {
		t.Fatalf("post-panic request: status %d degraded %v", resp.StatusCode, body.Degraded)
	}
}

// TestServerDeadlinePropagation pins that the client budget header becomes
// a context deadline inside the decision path, aborts the gated collective
// decision, and the request still answers from the greedy fallback.
func TestServerDeadlinePropagation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(testServerConfig(), reg)
	stub := newStubAligner(4)
	stub.gate = make(chan struct{}) // never closed: only the deadline frees the request
	srv.SetAligner(stub)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postAlign(t, ts.Client(), ts.URL, map[string]string{"X-Deadline-Ms": "5"}, "0")
	if resp.StatusCode != http.StatusOK || !body.Degraded {
		t.Fatalf("deadline request: status %d degraded %v, want 200/degraded", resp.StatusCode, body.Degraded)
	}
	if got := reg.Counter("serve.fallback").Value(); got != 1 {
		t.Fatalf("fallback counter %d, want 1", got)
	}
}

// TestServerRequestValidation covers the 4xx surface: malformed body,
// empty and oversized batches, unknown and duplicate sources.
func TestServerRequestValidation(t *testing.T) {
	cfg := testServerConfig()
	cfg.MaxBatch = 2
	srv := NewServer(cfg, obs.NewRegistry())
	srv.SetAligner(newStubAligner(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(body string) int {
		resp, err := client.Post(ts.URL+"/v1/align", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, tc := range []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"sources":[]}`, http.StatusBadRequest},
		{`{"sources":["0","1","2"]}`, http.StatusBadRequest}, // over MaxBatch
		{`{"sources":["99"]}`, http.StatusNotFound},
		{`{"sources":["nope"]}`, http.StatusNotFound},
		{`{"sources":["1","1"]}`, http.StatusBadRequest},
	} {
		if got := post(tc.body); got != tc.want {
			t.Errorf("body %s: status %d, want %d", tc.body, got, tc.want)
		}
	}

	// Candidates endpoint validation.
	for path, want := range map[string]int{
		"/v1/entity/99/candidates":    http.StatusNotFound,
		"/v1/entity/0/candidates?k=x": http.StatusBadRequest,
		"/v1/entity/0/candidates?k=2": http.StatusOK,
	} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestServerLifecycleAndGoroutines runs the full lifecycle — start, warm
// up, flood, drain on a real listener — and pins that (a) /readyz tracks
// warm-up and draining, (b) SIGTERM-style Shutdown waits for in-flight
// requests, and (c) the goroutine count returns to baseline afterwards.
func TestServerLifecycleAndGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	srv := NewServer(testServerConfig(), reg)
	stub := newStubAligner(8)
	stub.gate = make(chan struct{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// Warming up: healthz live, readyz and align not ready.
	getStatus := func(path string) int {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := getStatus("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during warm-up: %d", got)
	}
	if got := getStatus("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during warm-up: %d, want 503", got)
	}
	resp, _ := postAlign(t, client, base, nil, "0")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("align during warm-up: %d, want 503", resp.StatusCode)
	}

	srv.SetAligner(stub)
	if got := getStatus("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after warm-up: %d, want 200", got)
	}

	// Two in-flight requests blocked on the gate.
	statuses := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postAlign(t, client, base, nil, strconv.Itoa(i))
			if body.Degraded {
				t.Error("drained request answered degraded")
			}
			statuses <- resp.StatusCode
		}(i)
	}
	waitFor(t, func() bool { return stub.inFlight.Load() == 2 })

	// Drain: readyz flips immediately, in-flight requests finish, Serve
	// returns ErrServerClosed, Shutdown returns nil.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return !srv.Ready() })
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rec.Code)
	}

	close(stub.gate)
	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Fatalf("in-flight request during drain: status %d, want 200", status)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// Everything spawned by the server lifecycle must be gone.
	client.CloseIdleConnections()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline })
}
