package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
)

// The replica row-gather protocol reuses the WAL's framing discipline
// (internal/wal): every message travels as one length-prefixed CRC32-framed
// binary frame, so a torn TCP stream, a truncated HTTP body or a bit-flip
// anywhere in transit is a typed decode error — never a silently wrong
// gather and never a panic. Scores cross the wire as raw IEEE-754 bits, so
// a remote gather is bit-identical to a local one.
//
// Frame layout:
//
//	4-byte big-endian payload length | 1-byte message type | payload |
//	4-byte CRC32 (IEEE) over length+type+payload
//
// Messages:
//
//	metaReq    empty payload; answered with metaResp.
//	metaResp   JSON ReplicaMeta (names are bulky and cold — JSON keeps the
//	           hot binary path for gathers only).
//	gatherReq  8-byte want-version | 1-byte flags (bit0 = with features) |
//	           4-byte row count | that many 4-byte global row indices.
//	gatherResp 8-byte version | 4-byte row count | 4-byte target count |
//	           1-byte feature mask | rows×4-byte greedy argmax (int32) |
//	           rows×targets×8-byte fused scores | one such block per set
//	           feature-mask bit (structural, semantic, string in order).
//	error      1-byte code | UTF-8 message; decoded back into the matching
//	           typed sentinel so the router can branch on skew vs damage.
const (
	wireMsgMetaReq byte = iota + 1
	wireMsgMetaResp
	wireMsgGatherReq
	wireMsgGatherResp
	wireMsgError
)

// Feature-mask bits of a gatherResp, in wire order.
const (
	featMs byte = 1 << iota
	featMn
	featMl
)

// Remote-error codes carried by error frames.
const (
	wireErrInternal byte = iota + 1
	wireErrVersionSkew
	wireErrNotOwned
)

// maxWirePayload bounds a single frame; anything larger in a length field
// is framing damage, mirroring the WAL's maxFrameLen discipline.
const maxWirePayload = 1 << 27

// wireHeaderLen is the non-payload prefix: length + type.
const wireHeaderLen = 4 + 1

// ErrWireFrame is the sentinel every framing/codec violation matches via
// errors.Is: truncation, CRC mismatch, impossible lengths, malformed
// payloads. It is always retryable — the frame, not the replica's state,
// is damaged.
var ErrWireFrame = errors.New("serve: malformed wire frame")

// ErrVersionSkew reports that a replica's engine version differs from the
// version the router's decision is being assembled under. The router never
// mixes rows from different engine versions in one decision; it retries
// (the replica may be mid-hot-swap) and then degrades the partition.
var ErrVersionSkew = errors.New("serve: engine version skew")

// ErrNotOwned reports a gather for a source row outside the replica's
// partition — a topology misconfiguration, not transient damage.
var ErrNotOwned = errors.New("serve: source row not owned by partition")

// ErrRemote wraps a replica-side failure reported through an error frame.
var ErrRemote = errors.New("serve: remote replica error")

// appendWireFrame appends one framed message to buf.
func appendWireFrame(buf []byte, msgType byte, payload []byte) []byte {
	start := len(buf)
	var hdr [wireHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = msgType
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[start:]))
	return append(buf, crc[:]...)
}

// readWireFrame reads exactly one frame from r and verifies its CRC. All
// failures wrap ErrWireFrame.
func readWireFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrWireFrame, err)
	}
	plen := int(binary.BigEndian.Uint32(hdr[:4]))
	if plen > maxWirePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrWireFrame, plen)
	}
	body := make([]byte, plen+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: body: %v", ErrWireFrame, err)
	}
	sum := crc32.NewIEEE()
	sum.Write(hdr[:])
	sum.Write(body[:plen])
	if got, want := sum.Sum32(), binary.BigEndian.Uint32(body[plen:]); got != want {
		return 0, nil, fmt.Errorf("%w: crc32 %08x, frame records %08x", ErrWireFrame, got, want)
	}
	return hdr[4], body[:plen], nil
}

// decodeWireFrame decodes a buffer holding exactly one frame; trailing
// bytes are framing damage.
func decodeWireFrame(b []byte) (msgType byte, payload []byte, err error) {
	if len(b) < wireHeaderLen+4 {
		return 0, nil, fmt.Errorf("%w: %d bytes is below the frame minimum", ErrWireFrame, len(b))
	}
	plen := int(binary.BigEndian.Uint32(b[:4]))
	if plen > maxWirePayload || wireHeaderLen+plen+4 != len(b) {
		return 0, nil, fmt.Errorf("%w: payload length %d inconsistent with %d-byte frame", ErrWireFrame, plen, len(b))
	}
	end := wireHeaderLen + plen
	if got, want := crc32.ChecksumIEEE(b[:end]), binary.BigEndian.Uint32(b[end:]); got != want {
		return 0, nil, fmt.Errorf("%w: crc32 %08x, frame records %08x", ErrWireFrame, got, want)
	}
	return b[4], b[wireHeaderLen:end], nil
}

// gatherReq is the decoded form of a gatherReq payload.
type gatherReq struct {
	WantVersion  uint64
	WithFeatures bool
	Rows         []int
}

// maxGatherRows bounds one gather; the HTTP layer's MaxBatch is far below.
const maxGatherRows = 1 << 20

// encodeGatherReq serializes q into a fresh payload.
func encodeGatherReq(q gatherReq) []byte {
	p := make([]byte, 8+1+4+4*len(q.Rows))
	binary.BigEndian.PutUint64(p[:8], q.WantVersion)
	if q.WithFeatures {
		p[8] = 1
	}
	binary.BigEndian.PutUint32(p[9:13], uint32(len(q.Rows)))
	for i, r := range q.Rows {
		binary.BigEndian.PutUint32(p[13+4*i:], uint32(r))
	}
	return p
}

// decodeGatherReq parses a gatherReq payload; all failures wrap ErrWireFrame.
func decodeGatherReq(p []byte) (gatherReq, error) {
	var q gatherReq
	if len(p) < 13 {
		return q, fmt.Errorf("%w: gather request of %d bytes", ErrWireFrame, len(p))
	}
	q.WantVersion = binary.BigEndian.Uint64(p[:8])
	switch p[8] {
	case 0:
	case 1:
		q.WithFeatures = true
	default:
		return q, fmt.Errorf("%w: gather request flags %#x", ErrWireFrame, p[8])
	}
	n := int(binary.BigEndian.Uint32(p[9:13]))
	if n > maxGatherRows || 13+4*n != len(p) {
		return q, fmt.Errorf("%w: gather request row count %d inconsistent with %d bytes", ErrWireFrame, n, len(p))
	}
	q.Rows = make([]int, n)
	for i := range q.Rows {
		q.Rows[i] = int(int32(binary.BigEndian.Uint32(p[13+4*i:])))
	}
	return q, nil
}

// encodeShardRows serializes a gather answer. Feature blocks follow the
// mask's bit order; rows within a block are contiguous float64 bit
// patterns, so the decode on the other side is bit-exact.
func encodeShardRows(sr *ShardRows) []byte {
	var mask byte
	if sr.Ms != nil {
		mask |= featMs
	}
	if sr.Mn != nil {
		mask |= featMn
	}
	if sr.Ml != nil {
		mask |= featMl
	}
	nrows, ntgt := len(sr.Fused), sr.NTargets
	blocks := 1 + popcount(mask)
	p := make([]byte, 8+4+4+1+4*nrows+blocks*nrows*ntgt*8)
	binary.BigEndian.PutUint64(p[:8], sr.Version)
	binary.BigEndian.PutUint32(p[8:12], uint32(nrows))
	binary.BigEndian.PutUint32(p[12:16], uint32(ntgt))
	p[16] = mask
	off := 17
	for _, g := range sr.Greedy {
		binary.BigEndian.PutUint32(p[off:], uint32(int32(g)))
		off += 4
	}
	off = appendFloatBlock(p, off, sr.Fused)
	for _, block := range [][][]float64{sr.Ms, sr.Mn, sr.Ml} {
		if block != nil {
			off = appendFloatBlock(p, off, block)
		}
	}
	return p[:off]
}

func appendFloatBlock(p []byte, off int, rows [][]float64) int {
	for _, row := range rows {
		for _, v := range row {
			binary.BigEndian.PutUint64(p[off:], math.Float64bits(v))
			off += 8
		}
	}
	return off
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// decodeShardRows parses a gather answer; all failures wrap ErrWireFrame.
// Size arithmetic runs in int64 so absurd counts reject instead of
// overflowing, and nothing is allocated until the claimed geometry is
// proven consistent with the actual payload length.
func decodeShardRows(p []byte) (*ShardRows, error) {
	if len(p) < 17 {
		return nil, fmt.Errorf("%w: gather response of %d bytes", ErrWireFrame, len(p))
	}
	sr := &ShardRows{Version: binary.BigEndian.Uint64(p[:8])}
	nrows := int64(binary.BigEndian.Uint32(p[8:12]))
	ntgt := int64(binary.BigEndian.Uint32(p[12:16]))
	mask := p[16]
	if mask&^(featMs|featMn|featMl) != 0 {
		return nil, fmt.Errorf("%w: gather response feature mask %#x", ErrWireFrame, mask)
	}
	if nrows > maxGatherRows || ntgt > 1<<24 {
		return nil, fmt.Errorf("%w: gather response geometry %dx%d", ErrWireFrame, nrows, ntgt)
	}
	blocks := int64(1 + popcount(mask))
	want := 17 + 4*nrows + blocks*nrows*ntgt*8
	if want != int64(len(p)) {
		return nil, fmt.Errorf("%w: gather response %dx%d mask %#x wants %d bytes, frame has %d",
			ErrWireFrame, nrows, ntgt, mask, want, len(p))
	}
	sr.NTargets = int(ntgt)
	sr.Greedy = make([]int, nrows)
	off := 17
	for i := range sr.Greedy {
		sr.Greedy[i] = int(int32(binary.BigEndian.Uint32(p[off:])))
		off += 4
	}
	sr.Fused, off = readFloatBlock(p, off, int(nrows), int(ntgt))
	if mask&featMs != 0 {
		sr.Ms, off = readFloatBlock(p, off, int(nrows), int(ntgt))
	}
	if mask&featMn != 0 {
		sr.Mn, off = readFloatBlock(p, off, int(nrows), int(ntgt))
	}
	if mask&featMl != 0 {
		sr.Ml, off = readFloatBlock(p, off, int(nrows), int(ntgt))
	}
	return sr, nil
}

func readFloatBlock(p []byte, off, nrows, ntgt int) ([][]float64, int) {
	flat := make([]float64, nrows*ntgt)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.BigEndian.Uint64(p[off:]))
		off += 8
	}
	rows := make([][]float64, nrows)
	for i := range rows {
		rows[i] = flat[i*ntgt : (i+1)*ntgt]
	}
	return rows, off
}

// encodeWireError maps a replica-side error to an error-frame payload with
// a typed code, so the router can distinguish version skew and ownership
// misconfiguration from generic failure.
func encodeWireError(err error) []byte {
	code := wireErrInternal
	switch {
	case errors.Is(err, ErrVersionSkew):
		code = wireErrVersionSkew
	case errors.Is(err, ErrNotOwned):
		code = wireErrNotOwned
	}
	msg := err.Error()
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	return append([]byte{code}, msg...)
}

// decodeWireError reconstructs the typed error an error frame carries.
func decodeWireError(p []byte) error {
	if len(p) < 1 {
		return fmt.Errorf("%w: empty error frame", ErrWireFrame)
	}
	msg := string(p[1:])
	switch p[0] {
	case wireErrVersionSkew:
		return fmt.Errorf("%w: %s", ErrVersionSkew, msg)
	case wireErrNotOwned:
		return fmt.Errorf("%w: %s", ErrNotOwned, msg)
	case wireErrInternal:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	return fmt.Errorf("%w: error frame code %#x", ErrWireFrame, p[0])
}

// namesFingerprint hashes the name tables so a router can cheaply verify
// that every replica was built from the same corpus before trusting any
// row indices to mean the same entities.
func namesFingerprint(srcNames, tgtNames []string) uint64 {
	h := fnv.New64a()
	var sep = []byte{0}
	for _, s := range srcNames {
		h.Write([]byte(s))
		h.Write(sep)
	}
	h.Write([]byte{1})
	for _, s := range tgtNames {
		h.Write([]byte(s))
		h.Write(sep)
	}
	return h.Sum64()
}
