package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"ceaff/internal/obs"
)

// TestShardedEngineBitIdentity pins the sharded router's contract: for any
// shard count, every response — collective, greedy, grouped, candidates —
// is bit-identical to the unsharded engine. Runs in the GOMAXPROCS=1/4
// determinism suite.
func TestShardedEngineBitIdentity(t *testing.T) {
	const n = 30
	base := literalEngine(coalesceTestMatrix(n))
	ctx := context.Background()
	r := rand.New(rand.NewSource(13))

	for _, nshards := range []int{1, 3, 8} {
		se, err := NewShardedEngine(base, nshards)
		if err != nil {
			t.Fatal(err)
		}
		if se.NumSources() != base.NumSources() {
			t.Fatalf("%d shards: NumSources %d != %d", nshards, se.NumSources(), base.NumSources())
		}
		// Partition sanity: every row owned exactly once, locals consistent.
		counts := make([]int, nshards)
		for row := 0; row < n; row++ {
			s := se.owner[row]
			counts[s]++
			if se.shards[s].rows[se.local[row]] != row {
				t.Fatalf("%d shards: row %d local mapping broken", nshards, row)
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("%d shards: partition covers %d rows, want %d", nshards, total, n)
		}

		for trial := 0; trial < 30; trial++ {
			nrows := 1 + r.Intn(6)
			seen := map[int]bool{}
			var rows []int
			for len(rows) < nrows {
				row := r.Intn(n)
				if !seen[row] {
					seen[row] = true
					rows = append(rows, row)
				}
			}
			want, err := base.AlignCollective(ctx, rows, "")
			if err != nil {
				t.Fatal(err)
			}
			got, err := se.AlignCollective(ctx, rows, "")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d shards rows %v:\n got %+v\nwant %+v", nshards, rows, got, want)
			}
			if gg, wg := se.AlignGreedy(rows), base.AlignGreedy(rows); !reflect.DeepEqual(gg, wg) {
				t.Fatalf("%d shards greedy rows %v:\n got %+v\nwant %+v", nshards, rows, gg, wg)
			}
			wantC, err := base.Candidates(ctx, rows[0], 1+r.Intn(5))
			if err != nil {
				t.Fatal(err)
			}
			gotC, err := se.Candidates(ctx, rows[0], len(wantC))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotC, wantC) {
				t.Fatalf("%d shards candidates row %d:\n got %+v\nwant %+v", nshards, rows[0], gotC, wantC)
			}
		}

		// Grouped execution (the coalescer path) against per-group calls.
		groups := [][]int{{0, 5, 9}, {2}, {}, {7, 1}}
		gotG, err := se.AlignCollectiveGroups(ctx, groups, nil)
		if err != nil {
			t.Fatal(err)
		}
		for g, rows := range groups {
			if len(rows) == 0 {
				if len(gotG[g]) != 0 {
					t.Fatalf("%d shards: empty group got %+v", nshards, gotG[g])
				}
				continue
			}
			want, err := base.AlignCollective(ctx, rows, "")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotG[g], want) {
				t.Fatalf("%d shards group %d:\n got %+v\nwant %+v", nshards, g, gotG[g], want)
			}
		}
	}

	if _, err := NewShardedEngine(base, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
}

// TestShardedServerResponseBitIdentity drives full HTTP: a sharded server
// under concurrent load answers byte-identically to the unsharded one.
func TestShardedServerResponseBitIdentity(t *testing.T) {
	const n = 24
	base := literalEngine(coalesceTestMatrix(n))
	se, err := NewShardedEngine(base, 4)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(a Aligner) (*Server, *httptest.Server) {
		cfg := testServerConfig()
		cfg.CacheSize = 0
		srv := NewServer(cfg, obs.NewRegistry())
		srv.SetAligner(a)
		return srv, httptest.NewServer(srv.Handler())
	}
	_, plainTS := mk(base)
	defer plainTS.Close()
	_, shardTS := mk(se)
	defer shardTS.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys := []string{fmt.Sprint(i % n), fmt.Sprint((i + 7) % n)}
			ps, pb := postAlignRaw(t, plainTS.Client(), plainTS.URL, keys...)
			ss, sb := postAlignRaw(t, shardTS.Client(), shardTS.URL, keys...)
			if ps != http.StatusOK || ss != http.StatusOK {
				errs <- fmt.Sprintf("keys %v: statuses %d/%d", keys, ps, ss)
				return
			}
			if string(pb) != string(sb) {
				errs <- fmt.Sprintf("keys %v:\nplain %s\nshard %s", keys, pb, sb)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestRingProperties pins the router's hashing: deterministic ownership,
// and rough balance at realistic shard counts.
func TestRingProperties(t *testing.T) {
	ring := buildRing(4)
	for i := 1; i < len(ring); i++ {
		if ring[i].hash < ring[i-1].hash {
			t.Fatal("ring not sorted")
		}
	}
	counts := map[int]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("entity-%d", i)
		s := ringOwner(ring, k)
		if again := ringOwner(ring, k); again != s {
			t.Fatalf("ownership of %q not deterministic", k)
		}
		counts[s]++
	}
	for s := 0; s < 4; s++ {
		frac := float64(counts[s]) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %d owns %.1f%% of keys — ring badly imbalanced", s, 100*frac)
		}
	}
}
