package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// TestAdmissionBounds fills the in-flight slots and the queue one request
// at a time — every state transition is test-driven, no timing involved —
// and pins the shed boundary.
func TestAdmissionBounds(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(2, 1, reg)

	// Two immediate slots.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}

	// Third request queues; drive it from a goroutine and observe the
	// queue depth deterministically before releasing.
	acquired := make(chan error, 1)
	go func() { acquired <- a.Acquire(context.Background()) }()
	waitFor(t, func() bool { return a.QueueDepth() == 1 })

	// Fourth request finds both slots and the queue full: shed.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-capacity acquire returned %v, want ErrShed", err)
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}

	// Releasing a slot admits the queued request.
	a.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued acquire returned %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("in-flight %d after hand-off, want 2", got)
	}
	a.Release()
	a.Release()
	if a.InFlight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("not drained: inflight %d queue %d", a.InFlight(), a.QueueDepth())
	}
}

// TestAdmissionCancelWhileQueued pins that a caller waiting in the queue
// honours context cancellation and frees its queue slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 1, obs.NewRegistry())
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	acquired := make(chan error, 1)
	go func() { acquired <- a.Acquire(ctx) }()
	waitFor(t, func() bool { return a.QueueDepth() == 1 })
	cancel()
	if err := <-acquired; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued acquire returned %v", err)
	}
	waitFor(t, func() bool { return a.QueueDepth() == 0 })
	a.Release()
}

// TestAdmissionForcedShed pins the fault-injection site: an armed
// serve.admission fault sheds even an idle server.
func TestAdmissionForcedShed(t *testing.T) {
	t.Cleanup(robust.Reset)
	robust.Arm(robust.Fault{Site: FaultAdmission})
	a := NewAdmission(4, 4, obs.NewRegistry())
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("armed admission fault returned %v, want ErrShed", err)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("second acquire (fault window passed) returned %v", err)
	}
	a.Release()
}

// TestAdmissionConcurrentInvariant floods the controller from many
// goroutines and asserts the in-flight bound is never exceeded.
func TestAdmissionConcurrentInvariant(t *testing.T) {
	const maxInFlight, maxQueue, flood = 3, 2, 64
	a := NewAdmission(maxInFlight, maxQueue, obs.NewRegistry())
	var mu sync.Mutex
	var active, maxActive, admitted, shed int
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := a.Acquire(context.Background())
			if errors.Is(err, ErrShed) {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			mu.Unlock()
			runtime.Gosched() // widen the holding window
			mu.Lock()
			active--
			admitted++
			mu.Unlock()
			a.Release()
		}()
	}
	wg.Wait()
	if maxActive > maxInFlight {
		t.Fatalf("observed %d concurrent admissions, bound is %d", maxActive, maxInFlight)
	}
	if admitted+shed != flood {
		t.Fatalf("admitted %d + shed %d != flood %d", admitted, shed, flood)
	}
	if a.InFlight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("not drained: inflight %d queue %d", a.InFlight(), a.QueueDepth())
	}
}
