package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ceaff/internal/core"
	"ceaff/internal/mat"
	"ceaff/internal/match"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// Router is the cross-process counterpart of ShardedEngine: the same
// consistent-hash ownership and gather-then-centrally-decide discipline,
// but each partition is reached through a Transport, so replicas may be
// separate ceaffd processes. On full health its answers are bit-identical
// to the in-process ShardedEngine and the unsharded Engine — scores cross
// the wire as exact float64 bits and the collective decision runs once,
// centrally, over the gathered rows.
//
// Every remote gather runs through a fault-tolerance chain built from the
// repo's existing primitives:
//
//	breaker   per-replica Breaker; an open breaker skips the replica
//	          without burning the request's budget on a known-bad peer.
//	deadline  each try's timeout is carved from the request's remaining
//	          budget (remaining / tries left), so retries can never exceed
//	          the granted deadline end-to-end.
//	retry     robust.RetryPolicy with jittered exponential backoff;
//	          version-skew errors retry (the replica may be mid-hot-swap),
//	          ownership errors do not.
//	hedge     an optional second request to the partition's standby (or the
//	          primary again) after a p95-derived delay; the first success
//	          wins and the straggler is cancelled, never double-counted.
//
// When a partition stays unreachable past retry exhaustion the Router does
// NOT fail the request: reachable rows are answered collectively (they
// compete only among themselves) and lost sources come back unmatched with
// "degraded": true, the serve.partition.lost gauge counts the dark
// partitions, and the HTTP layer adds an Engine-Partial header — the
// offline pipeline's degradation-ledger semantics replayed at the
// replication layer.
//
// The version-skew rule: every gather of one decision carries the same
// wantVersion, and replicas refuse to answer at any other version, so a
// decision can never mix rows from two engine snapshots no matter how the
// hot-swap interleaves with the fan-out.
type Router struct {
	cfg RouterConfig
	reg *obs.Registry

	state    atomic.Pointer[routerState]
	replicas []*replicaSet // indexed by partition

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	done     chan struct{}

	lost       *obs.Gauge     // serve.partition.lost
	partial    *obs.Counter   // serve.gather.partial
	retries    *obs.Counter   // serve.replica.retries
	hedges     *obs.Counter   // serve.replica.hedges
	hedgeWins  *obs.Counter   // serve.replica.hedge_wins
	skews      *obs.Counter   // serve.replica.version_skew
	gatherTime *obs.Histogram // serve.gather.seconds (per-partition gather)
}

// RouterConfig parameterizes the Router's fault-tolerance chain. The zero
// value is usable: DefaultRouterConfig's values fill every unset field.
type RouterConfig struct {
	// ProbeInterval is the health-probe cadence of Start's loop.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one replica probe.
	ProbeTimeout time.Duration
	// GatherTimeout is the per-try budget when the request context carries
	// no deadline of its own.
	GatherTimeout time.Duration
	// Retry bounds gather attempts per partition per request.
	Retry robust.RetryPolicy
	// Breaker configures the per-replica circuit breakers.
	Breaker BreakerConfig
	// DisableHedge turns hedged second requests off.
	DisableHedge bool
	// HedgeDelay is the fixed hedge delay; 0 derives it from the p95 of
	// observed gather latency once HedgeMinSamples have been recorded.
	HedgeDelay time.Duration
	// HedgeMinSamples gates p95-derived hedging until the latency histogram
	// is populated enough to trust.
	HedgeMinSamples int64
	// OnVersion is called from the probe loop when every replica has agreed
	// on a new engine version and the router has adopted it — the daemon
	// hooks Server.Publish here so caches invalidate and response headers
	// advance with the fleet.
	OnVersion func(version uint64)
}

// DefaultRouterConfig returns production-shaped defaults: 1s probes, three
// gather attempts with 25ms jittered backoff, breakers that trip fast (a
// dead replica should stop costing budget within a few requests), and
// p95-derived hedging after 20 samples.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		ProbeInterval: time.Second,
		ProbeTimeout:  500 * time.Millisecond,
		GatherTimeout: 2 * time.Second,
		Retry: robust.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.2,
		},
		Breaker: BreakerConfig{
			Window:           10,
			MinSamples:       3,
			FailureThreshold: 0.5,
			Cooldown:         2 * time.Second,
		},
		HedgeMinSamples: 20,
	}
}

// routerState is the immutable routing snapshot: name tables, ring
// ownership and the agreed engine version, swapped atomically when the
// probe loop adopts a fleet-wide version change.
type routerState struct {
	version  uint64
	srcNames []string
	tgtNames []string
	byName   map[string]int
	owner    []int // source row → partition
	topK     int
	namesFP  uint64
}

// replicaSet is one partition's transports: the primary owner plus any
// standbys (extra transports announcing the same partition index). Hedged
// second requests go to the first standby; with none, the primary is asked
// again.
type replicaSet struct {
	partition int
	links     []*replicaLink
}

// replicaLink is one transport wrapped in its per-replica fault state.
type replicaLink struct {
	t       Transport
	breaker *Breaker
	healthy atomic.Bool
	version atomic.Uint64 // engine version from the last successful probe
}

// errBreakerOpen is the local (non-wire) refusal when a replica's breaker
// rejects an attempt; retryable — the backoff may outlive the cooldown.
var errBreakerOpen = errors.New("serve: replica breaker open")

// ErrPartitionLost reports that a partition answered no transport within
// the fault-tolerance chain's budget. Align paths degrade instead of
// surfacing it; Candidates returns it.
var ErrPartitionLost = errors.New("serve: partition lost")

// NewRouter connects to every transport, fetches metadata, and verifies the
// fleet is coherent: one split (same total, every partition covered), one
// corpus (same names fingerprint), one engine version, one topK. Metadata
// fetches run under cfg.Retry so a router racing its replicas' boot settles
// rather than failing. Extra transports announcing an already-owned
// partition become that partition's standbys in announcement order.
func NewRouter(ctx context.Context, cfg RouterConfig, transports []Transport, reg *obs.Registry) (*Router, error) {
	def := DefaultRouterConfig()
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = def.ProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = def.ProbeTimeout
	}
	if cfg.GatherTimeout <= 0 {
		cfg.GatherTimeout = def.GatherTimeout
	}
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry = def.Retry
	}
	if cfg.Breaker.Window < 1 {
		cfg.Breaker = def.Breaker
	}
	if cfg.HedgeMinSamples < 1 {
		cfg.HedgeMinSamples = def.HedgeMinSamples
	}
	if len(transports) == 0 {
		return nil, errors.New("serve: router needs at least one transport")
	}

	metas := make([]*ReplicaMeta, len(transports))
	for i, t := range transports {
		var m *ReplicaMeta
		err := cfg.Retry.Do(ctx, func(int) error {
			mctx, cancel := context.WithTimeout(ctx, cfg.GatherTimeout)
			defer cancel()
			var merr error
			m, merr = t.Meta(mctx)
			return merr
		})
		if err != nil {
			return nil, fmt.Errorf("serve: router meta from %s: %w", t.Addr(), err)
		}
		metas[i] = m
	}

	first := metas[0]
	if first.Total < 1 {
		return nil, fmt.Errorf("serve: %s reports %d partitions", transports[0].Addr(), first.Total)
	}
	if len(first.SrcNames) == 0 {
		return nil, fmt.Errorf("serve: %s sent no name tables", transports[0].Addr())
	}
	rt := &Router{
		cfg:        cfg,
		reg:        reg,
		replicas:   make([]*replicaSet, first.Total),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		lost:       reg.Gauge("serve.partition.lost"),
		partial:    reg.Counter("serve.gather.partial"),
		retries:    reg.Counter("serve.replica.retries"),
		hedges:     reg.Counter("serve.replica.hedges"),
		hedgeWins:  reg.Counter("serve.replica.hedge_wins"),
		skews:      reg.Counter("serve.replica.version_skew"),
		gatherTime: reg.Histogram("serve.gather.seconds"),
	}
	for p := range rt.replicas {
		rt.replicas[p] = &replicaSet{partition: p}
	}
	for i, m := range metas {
		t := transports[i]
		if m.Total != first.Total {
			return nil, fmt.Errorf("serve: %s splits %d ways, %s splits %d", t.Addr(), m.Total, transports[0].Addr(), first.Total)
		}
		if m.NamesFP != first.NamesFP {
			return nil, fmt.Errorf("serve: %s built from a different corpus (names fingerprint %x != %x)", t.Addr(), m.NamesFP, first.NamesFP)
		}
		if m.Version != first.Version {
			return nil, fmt.Errorf("serve: %s at engine version %d, %s at %d", t.Addr(), m.Version, transports[0].Addr(), first.Version)
		}
		if m.TopK != first.TopK {
			return nil, fmt.Errorf("serve: %s uses topK %d, %s uses %d", t.Addr(), m.TopK, transports[0].Addr(), first.TopK)
		}
		if m.Partition < 0 || m.Partition >= first.Total {
			return nil, fmt.Errorf("serve: %s announces partition %d of %d", t.Addr(), m.Partition, first.Total)
		}
		link := &replicaLink{t: t, breaker: NewBreaker(cfg.Breaker, nil)}
		link.healthy.Store(true)
		link.version.Store(m.Version)
		set := rt.replicas[m.Partition]
		set.links = append(set.links, link)
	}
	for p, set := range rt.replicas {
		if len(set.links) == 0 {
			return nil, fmt.Errorf("serve: no transport announces partition %d of %d", p, first.Total)
		}
	}
	rt.state.Store(newRouterState(first))
	rt.lost.Set(0)
	return rt, nil
}

// newRouterState derives the routing snapshot from one replica's metadata.
func newRouterState(m *ReplicaMeta) *routerState {
	byName := make(map[string]int, len(m.SrcNames))
	for i, name := range m.SrcNames {
		if _, ok := byName[name]; !ok {
			byName[name] = i
		}
	}
	return &routerState{
		version:  m.Version,
		srcNames: m.SrcNames,
		tgtNames: m.TgtNames,
		byName:   byName,
		owner:    partitionOwnership(m.SrcNames, m.Total),
		topK:     m.TopK,
		namesFP:  m.NamesFP,
	}
}

// Version reports the engine version the router currently routes at.
func (rt *Router) Version() uint64 { return rt.state.Load().version }

// NumPartitions reports the split width (observability hook).
func (rt *Router) NumPartitions() int { return len(rt.replicas) }

// --- Aligner / GroupAligner ---

// NumSources implements Aligner.
func (rt *Router) NumSources() int { return len(rt.state.Load().srcNames) }

// Resolve implements Aligner with the same key grammar as Engine.
func (rt *Router) Resolve(key string) (int, bool) {
	st := rt.state.Load()
	if i, err := strconv.Atoi(key); err == nil {
		if i >= 0 && i < len(st.srcNames) {
			return i, true
		}
		return 0, false
	}
	i, ok := st.byName[key]
	return i, ok
}

// Strategies implements Aligner: gathers are dense rows, so every
// registered strategy applies.
func (rt *Router) Strategies() []string { return match.StrategyNames() }

// AlignCollective implements Aligner as the one-group case of the grouped
// path.
func (rt *Router) AlignCollective(ctx context.Context, rows []int, strategy string) ([]Decision, error) {
	out, err := rt.AlignCollectiveGroups(ctx, [][]int{rows}, []string{strategy})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// AlignCollectiveGroups implements GroupAligner: all groups share one
// fan-out to the partitions (one gather per partition regardless of group
// count), then each group runs its own central collective decision over
// the rows that came back. Rows whose partition is lost degrade to
// unmatched "degraded": true decisions and are excluded from their group's
// competition — the reachable rows' answer is exactly what a request
// naming only them would get.
func (rt *Router) AlignCollectiveGroups(ctx context.Context, groups [][]int, strategies []string) ([][]Decision, error) {
	sts, err := strategiesFor(strategies)
	if err != nil {
		return nil, err
	}
	if len(sts) != 0 && len(sts) != len(groups) {
		return nil, fmt.Errorf("serve: %d strategies for %d groups", len(sts), len(groups))
	}
	st := rt.state.Load()
	total := 0
	for _, g := range groups {
		if err := validRequestRows(g, len(st.srcNames)); err != nil {
			return nil, err
		}
		total += len(g)
	}
	out := make([][]Decision, len(groups))
	if total == 0 {
		for g := range out {
			out[g] = []Decision{}
		}
		return out, nil
	}
	flat := make([]int, 0, total)
	for _, g := range groups {
		flat = append(flat, g...)
	}
	gathered, err := rt.gatherRows(ctx, st, flat, false)
	if err != nil {
		return nil, err
	}
	nTgt := len(st.tgtNames)
	off := 0
	for g, rows := range groups {
		var strategy match.Strategy
		if len(sts) != 0 {
			strategy = sts[g]
		}
		// Pack the reachable rows densely for the decision; lost rows are
		// answered degraded and do not compete.
		live := make([]int, 0, len(rows)) // positions within the group
		for i := range rows {
			if gathered.ok[off+i] {
				live = append(live, i)
			}
		}
		decisions := make([]Decision, len(rows))
		if len(live) > 0 {
			sub := mat.GetDense(len(live), nTgt)
			for li, i := range live {
				copy(sub.Row(li), gathered.fused[off+i])
			}
			asn, derr := core.AlignGatheredStrategy(ctx, sub, st.topK, strategy)
			mat.PutDense(sub)
			if derr != nil {
				return nil, derr
			}
			for li, i := range live {
				decisions[i] = decisionFromRow(st.srcNames, st.tgtNames, rows[i], gathered.fused[off+i], asn[li])
			}
		}
		for i, row := range rows {
			if !gathered.ok[off+i] {
				decisions[i] = degradedDecision(st.srcNames, row)
			}
		}
		out[g] = decisions
		off += len(rows)
	}
	return out, nil
}

// AlignGreedy implements Aligner: the precomputed greedy argmaxes live on
// the replicas, so even the cheap fallback is a (features-free) gather —
// under its own short budget, since the interface carries no context.
func (rt *Router) AlignGreedy(rows []int) []Decision {
	st := rt.state.Load()
	out := make([]Decision, len(rows))
	valid := make([]int, 0, len(rows))
	for i, row := range rows {
		if row < 0 || row >= len(st.srcNames) {
			out[i] = Decision{SourceIndex: row, TargetIndex: -1}
		} else {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return out
	}
	vrows := make([]int, len(valid))
	for vi, i := range valid {
		vrows[vi] = rows[i]
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.GatherTimeout)
	defer cancel()
	gathered, err := rt.gatherRows(ctx, st, vrows, false)
	if err != nil {
		for _, i := range valid {
			out[i] = degradedDecision(st.srcNames, rows[i])
		}
		return out
	}
	for vi, i := range valid {
		if !gathered.ok[vi] {
			out[i] = degradedDecision(st.srcNames, rows[i])
			continue
		}
		out[i] = decisionFromRow(st.srcNames, st.tgtNames, rows[i], gathered.fused[vi], gathered.greedy[vi])
	}
	return out
}

// Candidates implements Aligner through a single-row gather with
// per-feature rows. A lost partition is an error here — the candidates
// endpoint has no partial shape to degrade into.
func (rt *Router) Candidates(ctx context.Context, row, k int) ([]Candidate, error) {
	st := rt.state.Load()
	if row < 0 || row >= len(st.srcNames) {
		return nil, fmt.Errorf("serve: source %d out of range [0,%d)", row, len(st.srcNames))
	}
	gathered, err := rt.gatherRows(ctx, st, []int{row}, true)
	if err != nil {
		return nil, err
	}
	if !gathered.ok[0] {
		return nil, fmt.Errorf("%w: partition %d owning source %d", ErrPartitionLost, st.owner[row], row)
	}
	return candidatesFromRows(st.tgtNames, gathered.fused[0], k, gathered.feats[0]), nil
}

// degradedDecision is the partial-answer shape for a source whose partition
// is unreachable: unmatched, explicitly marked.
func degradedDecision(srcNames []string, row int) Decision {
	return Decision{SourceIndex: row, Source: srcNames[row], TargetIndex: -1, Degraded: true}
}

// gatheredRows is a fan-out's result, positionally aligned with the
// requested rows. ok[i] is false when row i's partition was lost; its
// other fields are then zero.
type gatheredRows struct {
	fused  [][]float64
	greedy []int
	ok     []bool
	feats  []featureRow // only populated when gathered withFeatures
}

// gatherRows fans out one gather per participating partition and assembles
// the answers positionally. Partition failures past the fault-tolerance
// chain degrade those positions; only the caller's own context ending
// fails the whole call.
func (rt *Router) gatherRows(ctx context.Context, st *routerState, rows []int, withFeatures bool) (*gatheredRows, error) {
	out := &gatheredRows{
		fused:  make([][]float64, len(rows)),
		greedy: make([]int, len(rows)),
		ok:     make([]bool, len(rows)),
	}
	if withFeatures {
		out.feats = make([]featureRow, len(rows))
	}
	type partWork struct {
		rows []int
		idxs []int // positions in the request
	}
	work := make(map[int]*partWork, len(rt.replicas))
	for i, row := range rows {
		p := st.owner[row]
		w := work[p]
		if w == nil {
			w = &partWork{}
			work[p] = w
		}
		w.rows = append(w.rows, row)
		w.idxs = append(w.idxs, i)
	}
	var wg sync.WaitGroup
	anyLost := atomic.Bool{}
	for p, w := range work {
		wg.Add(1)
		go func(p int, w *partWork) {
			defer wg.Done()
			sr, err := rt.gatherPartition(ctx, st, p, w.rows, withFeatures)
			if err != nil {
				anyLost.Store(true)
				return
			}
			for k, i := range w.idxs {
				out.fused[i] = sr.Fused[k]
				out.greedy[i] = sr.Greedy[k]
				out.ok[i] = true
				if withFeatures {
					out.feats[i] = featureRow{
						ms: indexOrNil(sr.Ms, k), mn: indexOrNil(sr.Mn, k), ml: indexOrNil(sr.Ml, k),
					}
				}
			}
		}(p, w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller's own budget ended; a partial answer here would be
		// indistinguishable from partition loss. Fail the request and let
		// the HTTP layer's breaker/fallback machinery take it.
		return nil, err
	}
	if anyLost.Load() {
		rt.partial.Inc()
	}
	return out, nil
}

func indexOrNil(rows [][]float64, i int) []float64 {
	if rows == nil {
		return nil
	}
	return rows[i]
}

// gatherPartition runs the full fault-tolerance chain for one partition's
// slice of a request: breaker-gated transport choice, deadline carving,
// bounded jittered retries, optional hedging. The returned ShardRows is
// verified to be at st.version — never mixed-version data.
func (rt *Router) gatherPartition(ctx context.Context, st *routerState, p int, rows []int, withFeatures bool) (*ShardRows, error) {
	set := rt.replicas[p]
	attempts := rt.cfg.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	deadline, hasDeadline := ctx.Deadline()
	var sr *ShardRows
	err := rt.cfg.Retry.Do(ctx, func(attempt int) error {
		if attempt > 0 {
			rt.retries.Inc()
		}
		// Carve this try's timeout from the request's remaining budget so
		// the retry sequence can never overrun the granted deadline: an
		// equal share of what is left for each try still owed.
		tryBudget := rt.cfg.GatherTimeout
		if hasDeadline {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return robust.Permanent(context.DeadlineExceeded)
			}
			if carved := remaining / time.Duration(attempts-attempt); carved < tryBudget {
				tryBudget = carved
			}
		}
		tctx, cancel := context.WithTimeout(ctx, tryBudget)
		defer cancel()
		got, gerr := rt.gatherOnce(tctx, st.version, set, rows, withFeatures)
		if gerr == nil {
			sr = got
			return nil
		}
		if errors.Is(gerr, ErrVersionSkew) {
			rt.skews.Inc()
		}
		switch {
		case ctx.Err() != nil:
			// The request's own budget ended; retrying cannot help.
			return robust.Permanent(gerr)
		case errors.Is(gerr, ErrNotOwned):
			// Topology misconfiguration; the same ask fails the same way.
			return robust.Permanent(gerr)
		case errors.Is(gerr, context.DeadlineExceeded):
			// Only the carved per-try budget expired. Strip the error's
			// wrap chain (fmt %v, not %w) so robust.Do does not mistake a
			// slow try for the whole request being out of time.
			return fmt.Errorf("serve: partition %d gather try timed out: %v", p, gerr)
		default:
			return gerr
		}
	})
	if err != nil {
		rt.markLost(set)
		return nil, fmt.Errorf("%w: partition %d: %v", ErrPartitionLost, p, err)
	}
	if sr.Version != st.version {
		// Belt over the replica-side check: a transport handing back rows
		// from another snapshot must never reach a decision.
		rt.markLost(set)
		return nil, fmt.Errorf("%w: partition %d answered version %d, decision is at %d",
			ErrVersionSkew, p, sr.Version, st.version)
	}
	return sr, nil
}

// gatherOnce performs a single (possibly hedged) gather attempt against
// the partition's transports.
func (rt *Router) gatherOnce(ctx context.Context, version uint64, set *replicaSet, rows []int, withFeatures bool) (*ShardRows, error) {
	primary := rt.pickLink(set, nil)
	if primary == nil {
		return nil, fmt.Errorf("%w: partition %d, all %d transports rejected", errBreakerOpen, set.partition, len(set.links))
	}
	call := func(link *replicaLink) func(context.Context) (*ShardRows, error) {
		return func(cctx context.Context) (*ShardRows, error) {
			defer rt.gatherTime.Time()()
			sr, err := link.t.Gather(cctx, version, rows, withFeatures)
			// A cancelled loser (hedge raced it and won) is not a replica
			// failure; everything else, including timeouts, feeds the
			// breaker.
			link.breaker.Record(err == nil || errors.Is(err, context.Canceled))
			return sr, err
		}
	}
	delay, hedgeable := rt.hedgeDelay()
	if !hedgeable {
		return call(primary)(ctx)
	}
	sr, hedged, err := robust.Hedged(ctx, delay,
		call(primary),
		func(cctx context.Context) (*ShardRows, error) {
			// The standby's breaker is consulted only when the hedge
			// actually fires: Allow obliges a Record, which only a
			// launched call gives.
			standby := rt.pickLink(set, primary)
			if standby == nil {
				return nil, errBreakerOpen
			}
			rt.hedges.Inc()
			return call(standby)(cctx)
		})
	if hedged && err == nil {
		rt.hedgeWins.Inc()
	}
	return sr, err
}

// pickLink returns the first breaker-admitted link, preferring healthy
// ones and skipping `not` (the hedge must hit a different transport when
// the partition has a standby; with none, the primary itself is the hedge
// target). The breaker's Allow obliges a Record, which the gather call
// path provides.
func (rt *Router) pickLink(set *replicaSet, not *replicaLink) *replicaLink {
	// Two passes (healthy first, then unhealthy-but-admitted — the breaker
	// may be probing a replica the prober has not revisited yet) so Allow
	// is only ever consumed on the link actually returned.
	for _, wantHealthy := range []bool{true, false} {
		for _, link := range set.links {
			if link == not || link.healthy.Load() != wantHealthy {
				continue
			}
			if link.breaker.Allow() {
				return link
			}
		}
	}
	if not != nil && len(set.links) == 1 && set.links[0].breaker.Allow() {
		// Single-transport partition: the hedge re-asks the primary.
		return set.links[0]
	}
	return nil
}

// hedgeDelay resolves the hedge trigger: disabled, fixed, or the p95 of
// observed gather latency once enough samples exist.
func (rt *Router) hedgeDelay() (time.Duration, bool) {
	if rt.cfg.DisableHedge {
		return 0, false
	}
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay, true
	}
	stats := rt.gatherTime.Stats()
	if stats.Count < rt.cfg.HedgeMinSamples {
		return 0, false
	}
	return time.Duration(stats.P95 * float64(time.Second)), true
}

// markLost flags every link of a partition unhealthy and refreshes the
// serve.partition.lost gauge; the probe loop flips links back as they
// answer /readyz again.
func (rt *Router) markLost(set *replicaSet) {
	for _, link := range set.links {
		link.healthy.Store(false)
	}
	rt.updateLostGauge()
}

// updateLostGauge recounts partitions with no healthy link.
func (rt *Router) updateLostGauge() {
	lost := 0
	for _, set := range rt.replicas {
		any := false
		for _, link := range set.links {
			if link.healthy.Load() {
				any = true
				break
			}
		}
		if !any {
			lost++
		}
	}
	rt.lost.Set(float64(lost))
}
