package serve

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ceaff/internal/core"
	"ceaff/internal/gcn"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
	"ceaff/internal/wal"
)

// Rebuilder turns a corpus snapshot into a fresh Engine, warm-starting GCN
// training from a CRC-checked checkpoint on disk when one is compatible.
//
// Checkpoint discipline, chosen so recovery is bit-deterministic:
//
//   - The checkpoint file is written once, by the first successful cold
//     build (atomically: temp file, fsync, rename), and then left alone as
//     long as it stays compatible. Every subsequent build — live rebuild or
//     boot replay — warm-starts from the same bytes, so a crash between
//     any two steps reproduces the exact engine a clean boot would build.
//   - gcn.ReadCheckpoint verifies the magic+CRC32 footer; a corrupt file is
//     counted, deleted, and the build falls back to a cold start that
//     recaptures a new checkpoint.
//   - A checkpoint incompatible with the snapshot (mutations changed the
//     entity counts) is replaced the same way: cold build, recapture.
//
// Warm starts resume from the last periodic checkpoint (epoch < Epochs), so
// the remaining epochs re-train against the *mutated* adjacency — the
// incremental re-alignment shape of iMUSE — at a fraction of full training
// cost.
type Rebuilder struct {
	// Cfg is the pipeline configuration every build runs under.
	Cfg core.Config
	// CheckpointPath persists the warm-start checkpoint; "" disables
	// warm-starting (every build is cold).
	CheckpointPath string
	// Reg receives rebuild metrics; nil disables them.
	Reg *obs.Registry
}

// Build runs the pipeline over in and returns the resulting engine. It is
// safe for sequential reuse; the Updater serializes calls.
func (rb *Rebuilder) Build(ctx context.Context, in *core.Input, version uint64) (Aligner, error) {
	cfg := rb.Cfg
	var captured *gcn.Checkpoint
	warm := false
	if rb.CheckpointPath != "" {
		ck, err := rb.loadCheckpoint()
		switch {
		case err != nil:
			rb.Reg.Counter("serve.ckpt.corrupt").Inc()
			_ = os.Remove(rb.CheckpointPath)
		case ck != nil && checkpointCompatible(ck, cfg.GCN, in):
			cfg.GCN.Resume = ck
			warm = true
			rb.Reg.Counter("serve.rebuild.warm").Inc()
		case ck != nil:
			rb.Reg.Counter("serve.ckpt.incompatible").Inc()
		}
		if !warm {
			if cfg.GCN.CheckpointEvery <= 0 {
				cfg.GCN.CheckpointEvery = 10
			}
			cfg.GCN.OnCheckpoint = func(ck *gcn.Checkpoint) { captured = ck }
		}
	}
	done := rb.Reg.Histogram("serve.rebuild.seconds").Time()
	e, err := NewEngine(ctx, in, cfg)
	done()
	if err != nil {
		return nil, err
	}
	if !warm && captured != nil {
		if perr := rb.persistCheckpoint(captured); perr != nil {
			// Losing the checkpoint only costs future builds their warm
			// start; the engine itself is sound.
			rb.Reg.Counter("serve.ckpt.persist.failures").Inc()
		}
	}
	return e, nil
}

// loadCheckpoint reads and CRC-verifies the checkpoint file. It returns
// (nil, nil) when no file exists and an error only for corruption or I/O
// failures.
func (rb *Rebuilder) loadCheckpoint() (*gcn.Checkpoint, error) {
	f, err := os.Open(rb.CheckpointPath)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gcn.ReadCheckpoint(f)
}

// persistCheckpoint writes ck atomically: temp file, fsync, rename — the
// same discipline as cmd/ceaff, so a crash mid-write leaves either the old
// checkpoint or none, never a torn one.
func (rb *Rebuilder) persistCheckpoint(ck *gcn.Checkpoint) error {
	tmp := rb.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = ck.Save(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, rb.CheckpointPath)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	rb.Reg.Counter("serve.ckpt.persisted").Inc()
	return nil
}

// checkpointCompatible reports whether ck can resume GCN training under g
// against the snapshot's entity counts. Mutations that intern new entities
// change the feature-matrix shapes and force a cold start.
func checkpointCompatible(ck *gcn.Checkpoint, g gcn.Config, in *core.Input) bool {
	layers := g.Layers
	if layers <= 0 {
		layers = 2
	}
	return len(ck.Weights) == layers &&
		ck.Weights[0].Cols == g.Dim &&
		ck.X1.Rows == in.G1.NumEntities() &&
		ck.X2.Rows == in.G2.NumEntities() &&
		ck.Epoch <= g.Epochs &&
		(g.Optimizer == gcn.Adam) == (ck.OptM != nil)
}

// BuildFunc produces a new engine for a corpus snapshot at a WAL sequence
// number. Rebuilder.Build is the production implementation; chaos tests
// substitute gated stubs to steer rebuild timing and failures.
type BuildFunc func(ctx context.Context, in *core.Input, version uint64) (Aligner, error)

// MutateResult acknowledges a durable mutation batch.
type MutateResult struct {
	// FirstSeq and LastSeq delimit the batch's WAL sequence numbers.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Pending counts logged mutations not yet reflected by the live engine.
	Pending uint64 `json:"pending"`
	// EngineVersion is the WAL sequence number the live engine reflects.
	EngineVersion uint64 `json:"engine_version"`
}

// Mutator is the write surface the HTTP server drives; Updater is the real
// implementation.
type Mutator interface {
	// Mutate durably applies one atomic mutation batch and returns its
	// sequence range. A *MutationError means the batch was invalid and
	// nothing changed.
	Mutate(ctx context.Context, muts []wal.Mutation) (MutateResult, error)
}

// UpdaterConfig parameterizes the background rebuild loop.
type UpdaterConfig struct {
	// RebuildThreshold is the pending-mutation count that triggers a
	// rebuild (>= 1). Below it, mutations accumulate until the next
	// RebuildInterval tick.
	RebuildThreshold int
	// RebuildInterval drains sub-threshold pending mutations periodically;
	// 0 disables the timer (rebuilds trigger on threshold only).
	RebuildInterval time.Duration
	// Retry bounds rebuild attempts; jittered exponential backoff between
	// them. After the final failure the engine is marked stale.
	Retry robust.RetryPolicy
}

// DefaultUpdaterConfig rebuilds after every mutation batch, with three
// jittered-backoff attempts per rebuild.
func DefaultUpdaterConfig() UpdaterConfig {
	return UpdaterConfig{
		RebuildThreshold: 1,
		RebuildInterval:  0,
		Retry: robust.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   500 * time.Millisecond,
			MaxDelay:    10 * time.Second,
			Multiplier:  2,
			Jitter:      0.2,
		},
	}
}

// Updater is the durable update subsystem glued together: it accepts
// mutation batches (validate → WAL append+fsync → project), and runs the
// background rebuild loop that drains pending mutations into fresh engines
// published via the server's atomic swap. A rebuild that exhausts its
// retries marks the served engine stale instead of taking the service down;
// the next batch or tick retries.
type Updater struct {
	cfg   UpdaterConfig
	store *Store
	log   *wal.Log
	build BuildFunc
	srv   *Server
	reg   *obs.Registry

	version   atomic.Uint64 // WAL seq of the last published engine
	rebuildMu sync.Mutex    // serializes rebuilds (loop vs RebuildNow)

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	rebuilds, failures *obs.Counter
	pendingGauge       *obs.Gauge
}

// NewUpdater wires the update subsystem. baseVersion is the WAL sequence
// the initially published engine reflects (the replayed seq at boot).
func NewUpdater(cfg UpdaterConfig, store *Store, log *wal.Log, build BuildFunc, srv *Server, reg *obs.Registry, baseVersion uint64) *Updater {
	if cfg.RebuildThreshold < 1 {
		cfg.RebuildThreshold = 1
	}
	u := &Updater{
		cfg: cfg, store: store, log: log, build: build, srv: srv, reg: reg,
		kick:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		rebuilds:     reg.Counter("serve.rebuilds"),
		failures:     reg.Counter("serve.rebuild.failures"),
		pendingGauge: reg.Gauge("serve.mutations.pending"),
	}
	u.version.Store(baseVersion)
	return u
}

// Version returns the WAL sequence number of the last published engine.
func (u *Updater) Version() uint64 { return u.version.Load() }

// Pending counts durably logged mutations the live engine does not reflect.
func (u *Updater) Pending() uint64 { return u.store.Seq() - u.version.Load() }

// Mutate implements Mutator: the batch is staged against the projection,
// appended to the WAL (acknowledged only after fsync), committed, and the
// rebuild loop kicked.
func (u *Updater) Mutate(_ context.Context, muts []wal.Mutation) (MutateResult, error) {
	first, last, err := u.store.Mutate(muts, func(ms []wal.Mutation) (uint64, uint64, error) {
		if ferr := robust.Fire(FaultWALAppend); ferr != nil {
			return 0, 0, ferr
		}
		return u.log.Append(ms)
	})
	if err != nil {
		return MutateResult{}, err
	}
	u.reg.Counter("serve.mutations.applied").Add(int64(len(muts)))
	u.pendingGauge.Set(float64(u.Pending()))
	u.Kick()
	return MutateResult{
		FirstSeq: first, LastSeq: last,
		Pending:       last - u.version.Load(),
		EngineVersion: u.version.Load(),
	}, nil
}

// Kick nudges the rebuild loop; coalesces with an already-pending nudge.
func (u *Updater) Kick() {
	select {
	case u.kick <- struct{}{}:
	default:
	}
}

// Start launches the rebuild loop. ctx cancellation aborts an in-progress
// build cooperatively (the pipeline's cancellation plumbing) and stops the
// loop; Close does the same and also waits for the loop to exit.
func (u *Updater) Start(ctx context.Context) {
	go u.loop(ctx)
}

// Close stops the loop and waits for it — afterwards no goroutine of the
// updater remains.
func (u *Updater) Close() {
	select {
	case <-u.stop:
	default:
		close(u.stop)
	}
	<-u.done
}

func (u *Updater) loop(ctx context.Context) {
	defer close(u.done)
	var tickC <-chan time.Time
	if u.cfg.RebuildInterval > 0 {
		t := time.NewTicker(u.cfg.RebuildInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-u.stop:
			return
		case <-ctx.Done():
			return
		case <-u.kick:
			// A kick fires on every accepted batch; rebuild only once the
			// backlog reaches the threshold.
			if u.Pending() < uint64(u.cfg.RebuildThreshold) {
				continue
			}
		case <-tickC:
			// The timer drains any backlog, however small.
			if u.Pending() == 0 {
				continue
			}
		}
		u.rebuildOnce(ctx)
	}
}

// RebuildNow synchronously rebuilds from the current snapshot even when no
// mutations are pending — operational resync and the chaos tests' lever. It
// returns the error of the final attempt, nil on success.
func (u *Updater) RebuildNow(ctx context.Context) error {
	return u.rebuildOnce(ctx)
}

// rebuildOnce snapshots the store and drives one rebuild-and-swap under the
// retry policy. In-flight requests keep the old engine until the atomic
// publish; a failure after all retries marks the engine stale.
func (u *Updater) rebuildOnce(ctx context.Context) error {
	u.rebuildMu.Lock()
	defer u.rebuildMu.Unlock()
	in, seq := u.store.Snapshot()
	err := u.cfg.Retry.Do(ctx, func(int) error {
		if ferr := robust.Fire(FaultRebuild); ferr != nil {
			return ferr
		}
		a, berr := u.build(ctx, in, seq)
		if berr != nil {
			return berr
		}
		if ferr := robust.Fire(FaultSwap); ferr != nil {
			return ferr
		}
		u.srv.Publish(a, seq)
		u.version.Store(seq)
		return nil
	})
	u.pendingGauge.Set(float64(u.Pending()))
	switch {
	case err == nil:
		u.rebuilds.Inc()
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		// Shutdown, not failure: the loop is exiting anyway.
	default:
		u.failures.Inc()
		u.srv.MarkStale()
	}
	return err
}
