package serve

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"ceaff/internal/blocking"
	"ceaff/internal/core"
	"ceaff/internal/match"
)

// SparseEngine serves alignment queries from the candidate-first (blocked)
// pipeline: fused scores exist only for blocked candidate pairs, so memory
// stays O(|test|·candidates) and the daemon can serve corpora whose dense
// matrix would not fit. Collective queries run the sparse deferred-
// acceptance decision (core.AlignRowsSparse) restricted to candidate
// lists; ranks and candidate listings are likewise candidate-local, the
// documented contract of blocked mode.
type SparseEngine struct {
	cands    blocking.Candidates
	scores   [][]float64    // fused candidate scores (Result.FusedSparse)
	feats    [3][][]float64 // per-feature candidate scores (nil when degraded)
	srcNames []string
	tgtNames []string
	byName   map[string]int
	greedy   []int // per-source independent argmax over candidates (-1 none)
	topK     int
	degraded []core.Degradation
}

// NewSparseEngine runs the blocked offline pipeline — candidate-restricted
// feature generation, sparse fusion, full decision — and freezes the result
// for serving.
func NewSparseEngine(ctx context.Context, in *core.Input, cfg core.Config, cands blocking.Candidates) (*SparseEngine, error) {
	sf, err := core.ComputeBlockedFeaturesContext(ctx, in, cfg.GCN, cands)
	if err != nil {
		return nil, fmt.Errorf("serve: blocked features: %w", err)
	}
	res, err := core.DecideBlockedContext(ctx, sf, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: blocked decision: %w", err)
	}
	srcNames := make([]string, len(in.Tests))
	tgtNames := make([]string, len(in.Tests))
	byName := make(map[string]int, len(in.Tests))
	for i, p := range in.Tests {
		srcNames[i] = in.G1.EntityName(p.U)
		tgtNames[i] = in.G2.EntityName(p.V)
		if _, ok := byName[srcNames[i]]; !ok {
			byName[srcNames[i]] = i
		}
	}
	e := &SparseEngine{
		cands:    sf.Cands,
		scores:   res.FusedSparse,
		feats:    sf.Scores,
		srcNames: srcNames,
		tgtNames: tgtNames,
		byName:   byName,
		greedy:   make([]int, len(sf.Cands)),
		topK:     cfg.PreferenceTopK,
		degraded: res.Degraded,
	}
	for i, cs := range sf.Cands {
		e.greedy[i] = sparseArgmax(cs, res.FusedSparse[i])
	}
	return e, nil
}

// sparseArgmax picks the best candidate independently: maximal fused score,
// ties toward the lower target index (candidate lists are ascending, so the
// first maximum wins — the same order match.Greedy uses densely).
func sparseArgmax(cands []int, scores []float64) int {
	best, bestScore := -1, 0.0
	for c, j := range cands {
		if best == -1 || scores[c] > bestScore {
			best, bestScore = j, scores[c]
		}
	}
	return best
}

// Degraded lists features the blocked pipeline dropped.
func (e *SparseEngine) Degraded() []core.Degradation { return e.degraded }

// NumSources implements Aligner.
func (e *SparseEngine) NumSources() int { return len(e.srcNames) }

// Resolve implements Aligner with Engine's key grammar.
func (e *SparseEngine) Resolve(key string) (int, bool) {
	if i, err := strconv.Atoi(key); err == nil {
		if i >= 0 && i < len(e.srcNames) {
			return i, true
		}
		return 0, false
	}
	i, ok := e.byName[key]
	return i, ok
}

// Strategies implements Aligner: the blocked engine accepts only strategies
// that can decide over candidate lists (Hungarian is excluded — it needs
// the dense matrix the blocked pipeline never materializes).
func (e *SparseEngine) Strategies() []string { return match.SparseStrategyNames() }

// AlignCollective implements Aligner via the sparse subset decision.
func (e *SparseEngine) AlignCollective(ctx context.Context, rows []int, strategy string) ([]Decision, error) {
	st, err := strategyFor(strategy)
	if err != nil {
		return nil, err
	}
	asn, err := core.AlignRowsSparseStrategy(ctx, e.cands, e.scores, rows, e.topK, st)
	if err != nil {
		return nil, err
	}
	out := make([]Decision, len(rows))
	for p, row := range rows {
		out[p] = e.decision(row, asn[p])
	}
	return out, nil
}

// AlignCollectiveGroups implements GroupAligner. Sparse groups need no
// shared gather — candidate rows are referenced, not copied — so grouped
// execution is a loop over the per-group decisions.
func (e *SparseEngine) AlignCollectiveGroups(ctx context.Context, groups [][]int, strategies []string) ([][]Decision, error) {
	out := make([][]Decision, len(groups))
	for g, rows := range groups {
		strategy := ""
		if len(strategies) != 0 {
			strategy = strategies[g]
		}
		d, err := e.AlignCollective(ctx, rows, strategy)
		if err != nil {
			return nil, err
		}
		out[g] = d
	}
	return out, nil
}

// AlignGreedy implements Aligner from the precomputed candidate argmaxes.
func (e *SparseEngine) AlignGreedy(rows []int) []Decision {
	out := make([]Decision, len(rows))
	for p, row := range rows {
		j := -1
		if row >= 0 && row < len(e.greedy) {
			j = e.greedy[row]
		}
		out[p] = e.decision(row, j)
	}
	return out
}

// candPos finds target j's position in row's ascending candidate list.
func (e *SparseEngine) candPos(row, j int) int {
	cs := e.cands[row]
	i := sort.SearchInts(cs, j)
	if i < len(cs) && cs[i] == j {
		return i
	}
	return -1
}

// decision assembles the Decision for source row matched to target j. Rank
// counts strictly-better candidates only — the blocked pipeline has no
// scores outside the candidate list.
func (e *SparseEngine) decision(row, j int) Decision {
	d := Decision{SourceIndex: row, Source: e.srcNames[row], TargetIndex: -1}
	if j < 0 {
		return d
	}
	c := e.candPos(row, j)
	if c < 0 {
		return d
	}
	score := e.scores[row][c]
	d.TargetIndex = j
	d.Target = e.tgtNames[j]
	d.Score = score
	r := 1
	for _, v := range e.scores[row] {
		if v > score {
			r++
		}
	}
	d.Rank = r
	d.Matched = true
	// Candidate lists are ascending, so positional tie-breaks toward the
	// lower candidate index coincide with lower target index — the same
	// unilateral order as the dense row scan.
	d.Unilateral = rowUnilateral(e.scores[row], c)
	return d
}

// Candidates implements Aligner over the blocked candidate list: top-k by
// fused score, ties toward the lower target index (mat.TopKRow's order),
// with per-feature breakdowns for the surviving features.
func (e *SparseEngine) Candidates(ctx context.Context, row, k int) ([]Candidate, error) {
	if row < 0 || row >= len(e.srcNames) {
		return nil, fmt.Errorf("serve: source %d out of range [0,%d)", row, len(e.srcNames))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	cs := e.cands[row]
	order := make([]int, len(cs))
	for i := range order {
		order[i] = i
	}
	sc := e.scores[row]
	sort.SliceStable(order, func(a, b int) bool {
		if sc[order[a]] != sc[order[b]] {
			return sc[order[a]] > sc[order[b]]
		}
		return cs[order[a]] < cs[order[b]]
	})
	if k > len(order) {
		k = len(order)
	}
	names := [3]string{"structural", "semantic", "string"}
	out := make([]Candidate, k)
	for r, c := range order[:k] {
		features := map[string]float64{}
		for f := 0; f < 3; f++ {
			if e.feats[f] != nil {
				features[names[f]] = e.feats[f][row][c]
			}
		}
		out[r] = Candidate{
			TargetIndex: cs[c],
			Target:      e.tgtNames[cs[c]],
			Score:       sc[c],
			Rank:        r + 1,
			Features:    features,
		}
	}
	return out, nil
}
