package serve

import (
	"testing"

	"ceaff/internal/obs"
)

func admissionKey(row int) cacheKey {
	return cacheKey{version: 1, kind: cacheKindAlign, row: row, k: 3}
}

// TestCacheDoorkeeperHotColdAdmission pins the TinyLFU-style admission
// contract for sampled (multi-source batch) inserts: one-hit wonders from a
// cold sweep never displace residents, while a genuinely hot key pays one
// extra miss and then enters, displacing the coldest resident.
func TestCacheDoorkeeperHotColdAdmission(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(4, reg)

	// Warming a non-full cache is free: sampled inserts go straight in.
	c.putSampled(admissionKey(0), "warm")
	if _, ok := c.get(admissionKey(0)); !ok {
		t.Fatal("sampled insert into a non-full cache was not admitted")
	}
	for row := 1; row < 4; row++ {
		c.put(admissionKey(row), "resident")
	}
	if c.len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.len())
	}

	// A cold sweep — eight distinct keys seen once each, as a wide batch
	// align would produce — must bounce off the doorkeeper wholesale.
	for row := 10; row < 18; row++ {
		c.putSampled(admissionKey(row), "cold")
	}
	if c.len() != 4 {
		t.Fatalf("cold sweep grew the cache to %d entries", c.len())
	}
	for row := 0; row < 4; row++ {
		if _, ok := c.get(admissionKey(row)); !ok {
			t.Fatalf("resident row %d displaced by a one-hit wonder", row)
		}
	}
	if got := reg.Counter("serve.cache.rejected").Value(); got != 8 {
		t.Fatalf("serve.cache.rejected = %d, want 8", got)
	}

	// A hot key: rejected on first sighting, admitted on the second — and
	// it displaces the least recently used resident (row 0, refreshed
	// first above).
	c.putSampled(admissionKey(20), "hot")
	if _, ok := c.get(admissionKey(20)); ok {
		t.Fatal("hot key admitted on first sighting")
	}
	c.putSampled(admissionKey(20), "hot")
	if _, ok := c.get(admissionKey(20)); !ok {
		t.Fatal("hot key not admitted on second sighting")
	}
	if _, ok := c.get(admissionKey(0)); ok {
		t.Fatal("admitting the hot key did not displace the LRU resident")
	}
	for row := 1; row < 4; row++ {
		if _, ok := c.get(admissionKey(row)); !ok {
			t.Fatalf("hot-key admission displaced warmer resident %d", row)
		}
	}
	if got := reg.Counter("serve.cache.admitted").Value(); got != 2 {
		t.Fatalf("serve.cache.admitted = %d, want 2 (warm insert + hot key)", got)
	}
	if got := reg.Counter("serve.cache.rejected").Value(); got != 9 {
		t.Fatalf("serve.cache.rejected = %d, want 9", got)
	}
}

// TestCacheDoorkeeperBoundAndReset pins the two hygiene properties: the
// doorkeeper's memory stays bounded under an arbitrarily wide cold scan,
// and Reset forgets sightings so a stale pre-swap signal cannot fast-track
// admission after a hot-swap.
func TestCacheDoorkeeperBoundAndReset(t *testing.T) {
	c := newResultCache(4, obs.NewRegistry())
	for row := 0; row < 4; row++ {
		c.put(admissionKey(row), "resident")
	}
	for row := 100; row < 300; row++ {
		c.putSampled(admissionKey(row), "scan")
	}
	c.mu.Lock()
	dk := len(c.doorkeeper)
	c.mu.Unlock()
	if dk > doorkeeperScale*4 {
		t.Fatalf("doorkeeper grew to %d notes, bound is %d", dk, doorkeeperScale*4)
	}

	// A key sighted once, then a Reset (engine hot-swap), must start over.
	c.putSampled(admissionKey(50), "pre-swap")
	c.Reset()
	if c.len() != 0 {
		t.Fatal("Reset left entries behind")
	}
	for row := 0; row < 4; row++ {
		c.put(admissionKey(row), "resident")
	}
	c.putSampled(admissionKey(50), "post-swap")
	if _, ok := c.get(admissionKey(50)); ok {
		t.Fatal("pre-swap doorkeeper sighting survived Reset and fast-tracked admission")
	}
}
