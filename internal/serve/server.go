package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ceaff/internal/match"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
	"ceaff/internal/wal"
)

// Config parameterizes the HTTP server. The zero value is unusable; start
// from DefaultServerConfig.
type Config struct {
	// MaxInFlight bounds concurrently executing alignment requests.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are shed with 429.
	MaxQueue int
	// RetryAfter is advertised in the Retry-After header of shed responses.
	RetryAfter time.Duration
	// DefaultTimeout bounds a request that sends no budget header.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested budget (X-Deadline-Ms).
	MaxTimeout time.Duration
	// MaxBatch bounds the number of sources per align request.
	MaxBatch int
	// DefaultTopK is the candidates-endpoint k when the query omits it;
	// MaxTopK caps it.
	DefaultTopK, MaxTopK int
	// Breaker configures the circuit breaker over the collective path.
	Breaker BreakerConfig
	// CoalesceWindow is how long an align request waits for concurrent
	// requests to merge into one batched collective call; 0 disables
	// coalescing (every request runs its own decision immediately).
	CoalesceWindow time.Duration
	// CoalesceMaxRows flushes a coalescing batch early once this many
	// source rows have accumulated.
	CoalesceMaxRows int
	// CacheSize bounds the versioned result cache (entries); 0 disables it.
	CacheSize int
	// StdlibEncode routes responses through encoding/json instead of the
	// arena-backed encoder — the A/B lever for the allocation benchmarks
	// and a paranoia escape hatch.
	StdlibEncode bool
	// Now replaces the clock used for queue-wait accounting and deadline
	// budgeting; tests inject a fake to pin the elapsed-wait subtraction.
	// Nil uses time.Now.
	Now func() time.Time
}

// DefaultServerConfig returns production-shaped defaults.
func DefaultServerConfig() Config {
	return Config{
		MaxInFlight:     16,
		MaxQueue:        64,
		RetryAfter:      time.Second,
		DefaultTimeout:  5 * time.Second,
		MaxTimeout:      30 * time.Second,
		MaxBatch:        256,
		DefaultTopK:     10,
		MaxTopK:         100,
		Breaker:         DefaultBreakerConfig(),
		CoalesceWindow:  2 * time.Millisecond,
		CoalesceMaxRows: 256,
		CacheSize:       4096,
	}
}

// Server is the fault-tolerant alignment daemon: HTTP transport over an
// Aligner, guarded by admission control, per-request deadlines, a circuit
// breaker with greedy fallback, and per-request panic isolation.
//
// Lifecycle: NewServer → (SetAligner once the offline pipeline finishes) →
// Serve → Shutdown. /healthz answers 200 from the moment Serve starts;
// /readyz answers 200 only between SetAligner and Shutdown.
type Server struct {
	cfg       Config
	reg       *obs.Registry
	admission *Admission
	breaker   *Breaker
	aligner   atomic.Pointer[alignerBox]
	mutator   atomic.Pointer[mutatorBox]
	partition atomic.Pointer[Partition]
	draining  atomic.Bool
	http      *http.Server

	// engineVersion is the WAL sequence number the served engine reflects;
	// stale flags that a newer state exists but its rebuild failed.
	engineVersion atomic.Uint64
	stale         atomic.Bool

	coalesce *coalescer
	cache    *resultCache

	requests         *obs.Counter
	fallbacks        *obs.Counter
	panics           *obs.Counter
	deadlineRejected *obs.Counter
	strategyRejected *obs.Counter
	latency          *obs.Histogram
	queueWait        *obs.Histogram
	handlerTime      *obs.Histogram
}

// alignerBox wraps the interface so atomic.Pointer has a concrete type. It
// carries the engine version so the cache keys and the served snapshot load
// atomically — a request can never pair the new engine with the old version
// (or vice versa) across a hot-swap.
type alignerBox struct {
	a       Aligner
	version uint64
}

// mutatorBox likewise for the mutation surface.
type mutatorBox struct{ m Mutator }

// NewServer builds a server around cfg. reg may be nil (metrics off), but
// the daemon always passes one so /metrics has content.
func NewServer(cfg Config, reg *obs.Registry) *Server {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = DefaultServerConfig().MaxBatch
	}
	if cfg.DefaultTopK < 1 {
		cfg.DefaultTopK = DefaultServerConfig().DefaultTopK
	}
	if cfg.MaxTopK < cfg.DefaultTopK {
		cfg.MaxTopK = cfg.DefaultTopK
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultServerConfig().DefaultTimeout
	}
	if cfg.MaxTimeout < cfg.DefaultTimeout {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultServerConfig().RetryAfter
	}
	s := &Server{
		cfg:              cfg,
		reg:              reg,
		admission:        NewAdmission(cfg.MaxInFlight, cfg.MaxQueue, reg),
		breaker:          NewBreaker(cfg.Breaker, reg),
		requests:         reg.Counter("serve.requests"),
		fallbacks:        reg.Counter("serve.fallback"),
		panics:           reg.Counter("serve.panics"),
		deadlineRejected: reg.Counter("serve.deadline.rejected"),
		strategyRejected: reg.Counter("serve.strategy.rejected"),
		latency:          reg.Histogram("serve.request.seconds"),
		queueWait:        reg.Histogram("serve.queue.seconds"),
		handlerTime:      reg.Histogram("serve.handler.seconds"),
	}
	s.cache = newResultCache(cfg.CacheSize, reg)
	s.coalesce = newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMaxRows, cfg.DefaultTimeout, reg)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("POST /v1/align", s.guard(http.HandlerFunc(s.handleAlign)))
	mux.Handle("GET /v1/entity/{id}/candidates", s.guard(http.HandlerFunc(s.handleCandidates)))
	mux.Handle("POST /v1/mutate", s.guard(http.HandlerFunc(s.handleMutate)))
	mux.Handle("POST /v1/shard", s.guard(http.HandlerFunc(s.handleShard)))
	s.http = &http.Server{Handler: mux}
	return s
}

// SetAligner installs the query engine and flips the server ready. It is
// called once the offline pipeline completes, so the daemon can expose
// /healthz while still warming up. The engine version is left unchanged;
// versioned installs go through Publish.
func (s *Server) SetAligner(a Aligner) {
	s.Publish(a, s.engineVersion.Load())
}

// Publish atomically swaps in a new engine snapshot reflecting WAL sequence
// version and clears any stale flag. Requests in flight keep the snapshot
// they loaded at admission; new requests see the new one immediately.
func (s *Server) Publish(a Aligner, version uint64) {
	s.aligner.Store(&alignerBox{a: a, version: version})
	s.engineVersion.Store(version)
	s.stale.Store(false)
	// Invalidate wholesale: no answer computed under the previous snapshot
	// may be served after the swap. (Version-carrying keys already prevent
	// cross-version reads; the reset reclaims the dead entries immediately.)
	s.cache.Reset()
	s.reg.Gauge("serve.engine.version").Set(float64(version))
	s.reg.Gauge("serve.engine.stale").Set(0)
	s.reg.Counter("serve.engine.swaps").Inc()
}

// MarkStale records that the served engine lags durable state because a
// rebuild failed. The service keeps answering — degraded to staleness, not
// down — and every response advertises Engine-Stale: true until the next
// successful Publish.
func (s *Server) MarkStale() {
	s.stale.Store(true)
	s.reg.Gauge("serve.engine.stale").Set(1)
}

// EngineVersion returns the WAL sequence number of the served engine.
func (s *Server) EngineVersion() uint64 { return s.engineVersion.Load() }

// Stale reports whether the served engine is marked stale.
func (s *Server) Stale() bool { return s.stale.Load() }

// SetMutator installs the mutation surface. Without one (no -wal), POST
// /v1/mutate answers 501.
func (s *Server) SetMutator(m Mutator) {
	s.mutator.Store(&mutatorBox{m: m})
}

// SetPartition exposes p over the binary row-gather protocol at POST
// /v1/shard — the replica daemon's side of the Router's HTTPTransport.
// Without one the endpoint answers 501.
func (s *Server) SetPartition(p *Partition) {
	s.partition.Store(p)
}

// now is the server's injectable clock.
func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// Ready reports whether the server has an engine and is not draining.
func (s *Server) Ready() bool {
	return s.aligner.Load() != nil && !s.draining.Load()
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	return s.http.Serve(l)
}

// Handler exposes the routed handler (with all middleware) for in-process
// use — tests drive it through httptest without a real listener.
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Shutdown drains the server: /readyz flips to 503 so load balancers stop
// sending, the listener closes, keep-alive connections are asked to wind
// down, and in-flight requests run to completion — or until ctx expires,
// at which point Shutdown returns ctx's error and the caller decides
// whether to force-close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.http.SetKeepAlivesEnabled(false)
	return s.http.Shutdown(ctx)
}

// Close force-closes all connections; the escalation path when the drain
// deadline passes.
func (s *Server) Close() error { return s.http.Close() }

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// guard wraps an alignment handler with the robustness middleware, applied
// outermost first: panic isolation, readiness, admission, deadline.
func (s *Server) guard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		defer s.latency.Time()()
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal error: %v", v)})
			}
		}()
		if s.aligner.Load() == nil || s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "not ready"})
			return
		}
		w.Header().Set("Engine-Version", strconv.FormatUint(s.engineVersion.Load(), 10))
		w.Header().Set("Engine-Stale", strconv.FormatBool(s.stale.Load()))
		budget, err := s.requestBudget(r)
		if err != nil {
			s.deadlineRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		queued := s.now()
		if err := s.admission.Acquire(r.Context()); err != nil {
			if errors.Is(err, ErrShed) {
				w.Header().Set("Retry-After",
					strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
				writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "overloaded"})
				return
			}
			// Client went away while queued; nothing useful to write.
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "cancelled while queued"})
			return
		}
		defer s.admission.Release()
		// Queue wait and handler execution are separate histograms: under
		// load the admission queue dominates latency long before the
		// handlers slow down, and a single end-to-end number hides which
		// regime the server is in.
		waited := s.now().Sub(queued)
		s.queueWait.Observe(waited)
		defer s.handlerTime.Time()()

		// The budget is end-to-end from the client's perspective: time
		// already burnt waiting for an admission slot comes out of it, so a
		// handler fanning out downstream (coalescer, replica gathers) can
		// never consume more than the granted deadline. A budget fully
		// consumed in the queue is answered 504 without running the handler.
		remaining := budget - waited
		if remaining <= 0 {
			s.reg.Counter("serve.deadline.exhausted").Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exhausted while queued"})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), remaining)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// requestBudget resolves the request's deadline: the client's X-Deadline-Ms
// header clamped to MaxTimeout, or DefaultTimeout when absent. A header that
// is present but not a positive integer is a client error, answered with 400
// rather than silently running under the default budget the client did not
// ask for.
func (s *Server) requestBudget(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return s.cfg.DefaultTimeout, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms < 1 {
		return 0, fmt.Errorf("malformed X-Deadline-Ms %q: want a positive integer of milliseconds", h)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	writeJSON(w, http.StatusOK, readyzBody{
		Status:        "ready",
		EngineVersion: s.engineVersion.Load(),
		Stale:         s.stale.Load(),
	})
}

// readyzBody is the ready-state answer: readiness never flips during a
// rebuild or after a failed one — staleness is reported here instead.
type readyzBody struct {
	Status        string `json:"status"`
	EngineVersion uint64 `json:"engine_version"`
	Stale         bool   `json:"stale"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// alignRequest is the POST /v1/align body.
type alignRequest struct {
	// Sources are decimal test-source indices or source entity names.
	Sources []string `json:"sources"`
	// Strategy selects the decision strategy for this request by name or
	// alias ("da", "greedy", "greedy11", "hungarian", "auction", ...);
	// empty means the engine default (deferred acceptance). Names the
	// engine does not support — unknown, or dense-only on a blocked
	// engine — are rejected with 400. The degraded greedy fallback ignores
	// the field: fallback answers always come from the precomputed ranking.
	Strategy string `json:"strategy,omitempty"`
}

// alignResponse is the POST /v1/align answer.
type alignResponse struct {
	// Degraded is true when the answer came from the greedy fallback
	// instead of the collective decision.
	Degraded bool       `json:"degraded"`
	Results  []Decision `json:"results"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if err := robust.Fire(FaultPanic); err != nil {
		panic(err)
	}
	box := s.aligner.Load()
	a := box.a
	var req alignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON body: " + err.Error()})
		return
	}
	if len(req.Sources) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty sources"})
		return
	}
	if len(req.Sources) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Sources), s.cfg.MaxBatch)})
		return
	}
	strategy, err := s.resolveStrategy(a, req.Strategy)
	if err != nil {
		s.strategyRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	rows := make([]int, len(req.Sources))
	seen := make(map[int]bool, len(req.Sources))
	for i, key := range req.Sources {
		row, ok := a.Resolve(key)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown source " + strconv.Quote(key)})
			return
		}
		if seen[row] {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "duplicate source " + strconv.Quote(key)})
			return
		}
		seen[row] = true
		rows[i] = row
	}

	// The expensive collective path runs only when the breaker admits it;
	// otherwise — and on any collective failure — the precomputed greedy
	// ranking answers with "degraded": true. Failures (including deadline
	// expiry, which signals overload) feed the breaker; a disconnected
	// client (context.Canceled) counts as a non-failure.
	if s.breaker.Allow() {
		err := robust.Fire(FaultCollective)
		var results []Decision
		if err == nil {
			results, err = s.alignCollective(r.Context(), box, rows, strategy)
		}
		if err == nil {
			s.breaker.Record(true)
			s.writeAlignResponse(w, alignResponse{Degraded: false, Results: results})
			return
		}
		s.breaker.Record(errors.Is(err, context.Canceled))
	}
	s.fallbacks.Inc()
	s.writeAlignResponse(w, alignResponse{Degraded: true, Results: a.AlignGreedy(rows)})
}

// resolveStrategy canonicalizes and validates a per-request strategy name
// against the engine's supported set, mirroring the malformed-deadline
// contract: a strategy the request names but the server cannot honour is a
// client error answered with 400, never a silent fallback to the default
// decision the client did not ask for.
func (s *Server) resolveStrategy(a Aligner, name string) (string, error) {
	if name == "" {
		return "", nil
	}
	st, err := match.ByName(name)
	if err != nil {
		return "", err
	}
	canon := st.Name()
	supported := a.Strategies()
	for _, have := range supported {
		if have == canon {
			s.reg.Counter("serve.align.strategy." + canon).Inc()
			return canon, nil
		}
	}
	return "", fmt.Errorf("strategy %q not supported by this engine (supported: %s)",
		canon, strings.Join(supported, ", "))
}

// alignCollective answers the collective decision for rows through the
// result cache and the coalescer. Only default-strategy requests touch the
// cache — per-row keys mean per-row answers, and a non-default strategy's
// answer is a different function of the same row. Degraded fallback answers
// never reach here, so the cache only ever holds full-fidelity collective
// results.
func (s *Server) alignCollective(ctx context.Context, box *alignerBox, rows []int, strategy string) ([]Decision, error) {
	cacheable := strategy == ""
	if cacheable {
		if results, ok := s.cacheLookup(box.version, rows); ok {
			return results, nil
		}
	}
	var results []Decision
	var err error
	if s.coalesce != nil {
		select {
		case res := <-s.coalesce.submit(box, rows, strategy):
			results, err = res.decisions, res.err
		case <-ctx.Done():
			// The batch keeps running for its other members; this caller's
			// budget is spent. The buffered done channel absorbs the result.
			return nil, ctx.Err()
		}
	} else {
		results, err = box.a.AlignCollective(ctx, rows, strategy)
	}
	if err == nil && cacheable {
		s.cacheAdmit(box.version, rows, results)
	}
	return results, err
}

// cacheLookup serves a default-strategy request from per-row cached
// answers. A single row is a direct hit. A multi-row group is served from
// cache only when every row hits, every cached answer is a matched
// unilateral decision, and the chosen targets are pairwise distinct: under
// deferred acceptance, sources whose individual argmaxes do not collide all
// receive their first preference, so the collective answer is exactly the
// concatenation of the unilateral ones.
func (s *Server) cacheLookup(version uint64, rows []int) ([]Decision, bool) {
	if len(rows) == 1 {
		if v, ok := s.cache.get(cacheKey{version: version, kind: cacheKindAlign, row: rows[0]}); ok {
			return v.([]Decision), true
		}
		return nil, false
	}
	out := make([]Decision, len(rows))
	targets := make(map[int]bool, len(rows))
	for p, row := range rows {
		v, ok := s.cache.get(cacheKey{version: version, kind: cacheKindAlign, row: row})
		if !ok {
			return nil, false
		}
		ds := v.([]Decision)
		if len(ds) != 1 {
			return nil, false
		}
		d := ds[0]
		if !d.Matched || !d.Unilateral || targets[d.TargetIndex] {
			return nil, false
		}
		targets[d.TargetIndex] = true
		out[p] = d
	}
	s.reg.Counter("serve.cache.group_hits").Inc()
	return out, true
}

// cacheAdmit inserts per-row answers from a default-strategy result. A
// single-row answer caches unconditionally — it is a pure function of
// (version, row). Rows of a multi-source batch are admitted individually
// only when matched and unilateral: those are provably what the single-row
// request would answer, so batches warm the per-row cache without ever
// poisoning it with competition-dependent outcomes. Multi-source rows go
// through the doorkeeper (putSampled): when the cache is full, a batch row
// must be asked for twice before it may displace a resident entry, so one
// sweeping batch scan cannot flush the hot single-row working set.
// Degraded rows — partition-loss placeholders, not answers — never enter.
func (s *Server) cacheAdmit(version uint64, rows []int, results []Decision) {
	if len(results) != len(rows) {
		return
	}
	if len(rows) == 1 {
		if d := results[0]; !d.Degraded {
			s.cache.put(cacheKey{version: version, kind: cacheKindAlign, row: rows[0]}, results)
		}
		return
	}
	for p, row := range rows {
		if d := results[p]; d.Matched && d.Unilateral && !d.Degraded {
			s.cache.putSampled(cacheKey{version: version, kind: cacheKindAlign, row: row}, []Decision{d})
		}
	}
}

// handleShard answers the binary row-gather protocol for the installed
// Partition. Requests and responses are single CRC-framed messages; every
// replica-side failure (version skew, un-owned rows, torn request frames)
// travels back as a typed error frame under HTTP 200, so the transport can
// distinguish protocol-level refusals from the connection-level failures
// that surface as non-200s or read errors.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	p := s.partition.Load()
	if p == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "shard protocol disabled: daemon is not a replica"})
		return
	}
	msgType, payload, err := readWireFrame(http.MaxBytesReader(w, r.Body, maxWirePayload+wireHeaderLen+4))
	if err != nil {
		s.reg.Counter("serve.shard.bad_frames").Inc()
		writeShardFrame(w, wireMsgError, encodeWireError(err))
		return
	}
	switch msgType {
	case wireMsgMetaReq:
		body, err := json.Marshal(p.Meta())
		if err != nil {
			writeShardFrame(w, wireMsgError, encodeWireError(err))
			return
		}
		writeShardFrame(w, wireMsgMetaResp, body)
	case wireMsgGatherReq:
		q, err := decodeGatherReq(payload)
		if err != nil {
			s.reg.Counter("serve.shard.bad_frames").Inc()
			writeShardFrame(w, wireMsgError, encodeWireError(err))
			return
		}
		sr, err := p.GatherLocal(q.WantVersion, q.Rows, q.WithFeatures)
		if err != nil {
			writeShardFrame(w, wireMsgError, encodeWireError(err))
			return
		}
		s.reg.Counter("serve.shard.gathers").Inc()
		writeShardFrame(w, wireMsgGatherResp, encodeShardRows(sr))
	default:
		writeShardFrame(w, wireMsgError,
			encodeWireError(fmt.Errorf("%w: unexpected frame type %#x", ErrWireFrame, msgType)))
	}
}

func writeShardFrame(w http.ResponseWriter, msgType byte, payload []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(appendWireFrame(nil, msgType, payload))
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	box := s.aligner.Load()
	a := box.a
	row, ok := a.Resolve(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown source " + strconv.Quote(r.PathValue("id"))})
		return
	}
	k := s.cfg.DefaultTopK
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "k must be a positive integer"})
			return
		}
		k = v
	}
	if k > s.cfg.MaxTopK {
		k = s.cfg.MaxTopK
	}
	key := cacheKey{version: box.version, kind: cacheKindCandidates, row: row, k: k}
	if v, ok := s.cache.get(key); ok {
		s.writeCandidatesResponse(w, v.([]Candidate))
		return
	}
	cands, err := a.Candidates(r.Context(), row, k)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	s.cache.put(key, cands)
	s.writeCandidatesResponse(w, cands)
}

// mutateRequest is the POST /v1/mutate body: a batch of mutations applied
// all-or-nothing and acknowledged only after the WAL fsync.
type mutateRequest struct {
	Mutations []wal.Mutation `json:"mutations"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	box := s.mutator.Load()
	if box == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "mutations disabled: daemon started without -wal"})
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON body: " + err.Error()})
		return
	}
	if len(req.Mutations) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty mutations"})
		return
	}
	if len(req.Mutations) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Mutations), s.cfg.MaxBatch)})
		return
	}
	res, err := box.m.Mutate(r.Context(), req.Mutations)
	if err != nil {
		var merr *MutationError
		if errors.As(err, &merr) {
			s.reg.Counter("serve.mutations.rejected").Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: merr.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}
