package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// nastyStrings exercise every branch of the string escaper: HTML escaping,
// control characters, invalid UTF-8, the JS line separators, and multi-byte
// runes adjacent to escapes.
var nastyStrings = []string{
	"",
	"plain",
	`quote " and backslash \`,
	"<script>&amp;</script>",
	"tab\there\nnewline\rreturn",
	"ctrl\x00\x01\x1f\x7fend",
	"bad utf8 \xff\xfe mid",
	"trunc \xe2\x82",
	"line sep \u2028 para sep \u2029",
	"héllo wörld — ünïcode ✓ 漢字",
	"emoji 🚀 mixed \x02 with ctrl",
	strings.Repeat("a", 300) + "\"",
}

// nastyFloats cover the formatting cutovers: shortest 'f', the 1e-6/1e21
// 'e' switchovers, exponent-zero cleanup, negative zero, and subnormals.
var nastyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0,
	1e-6, 9.99e-7, 1e-7, 1e20, 1e21, 1.5e21, -2.5e-9,
	math.MaxFloat64, math.SmallestNonzeroFloat64, 5e-324,
	123456.789, -0.000001234,
}

func randString(r *rand.Rand) string {
	return nastyStrings[r.Intn(len(nastyStrings))]
}

func randFloat(r *rand.Rand) float64 {
	switch r.Intn(3) {
	case 0:
		return nastyFloats[r.Intn(len(nastyFloats))]
	case 1:
		return r.NormFloat64()
	default:
		return math.Float64frombits(r.Uint64() &^ (0x7FF << 52)) // finite by construction
	}
}

func randDecision(r *rand.Rand) Decision {
	d := Decision{
		SourceIndex: r.Intn(1000) - 1,
		Source:      randString(r),
		TargetIndex: r.Intn(1000) - 1,
		Score:       randFloat(r),
		Matched:     r.Intn(2) == 0,
	}
	if r.Intn(2) == 0 {
		d.Target = randString(r)
	}
	if r.Intn(2) == 0 {
		d.Rank = r.Intn(50)
	}
	return d
}

// TestEncodeMatchesStdlib pins the arena encoder's output byte-identical to
// encoding/json across randomized responses.
func TestEncodeMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		resp := alignResponse{Degraded: r.Intn(2) == 0}
		if r.Intn(10) > 0 {
			resp.Results = make([]Decision, r.Intn(5))
			for i := range resp.Results {
				resp.Results[i] = randDecision(r)
			}
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendAlignResponse(nil, resp)
		if !ok {
			t.Fatalf("trial %d: encoder rejected finite response", trial)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d:\n got %q\nwant %q", trial, got, want)
		}
	}
}

func TestEncodeCandidatesMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	featureKeys := []string{"structural", "semantic", "string", "weird<key>"}
	for trial := 0; trial < 500; trial++ {
		var cands []Candidate
		if r.Intn(10) > 0 {
			cands = make([]Candidate, r.Intn(4))
			for i := range cands {
				c := Candidate{
					TargetIndex: r.Intn(100),
					Target:      randString(r),
					Score:       randFloat(r),
					Rank:        i + 1,
				}
				if r.Intn(5) > 0 {
					c.Features = map[string]float64{}
					for _, k := range featureKeys[:r.Intn(len(featureKeys)+1)] {
						c.Features[k] = randFloat(r)
					}
				}
				cands[i] = c
			}
		}
		want, err := json.Marshal(map[string][]Candidate{"candidates": cands})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendCandidatesResponse(nil, cands)
		if !ok {
			t.Fatalf("trial %d: encoder rejected finite response", trial)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d:\n got %q\nwant %q", trial, got, want)
		}
	}
}

// TestEncodeStringTorture pins every nasty string individually so a failure
// names the exact input.
func TestEncodeStringTorture(t *testing.T) {
	for _, s := range nastyStrings {
		want, _ := json.Marshal(s)
		got := appendJSONString(nil, s)
		if string(got) != string(want) {
			t.Errorf("string %q:\n got %q\nwant %q", s, got, want)
		}
	}
}

func TestEncodeFloatTorture(t *testing.T) {
	for _, f := range nastyFloats {
		want, _ := json.Marshal(f)
		got, ok := appendJSONFloat(nil, f)
		if !ok {
			t.Errorf("float %v rejected", f)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("float %v: got %q want %q", f, got, want)
		}
	}
	if _, ok := appendJSONFloat(nil, math.NaN()); ok {
		t.Error("NaN accepted")
	}
	if _, ok := appendJSONFloat(nil, math.Inf(1)); ok {
		t.Error("+Inf accepted")
	}
	if _, ok := appendAlignResponse(nil, alignResponse{
		Results: []Decision{{Score: math.Inf(-1)}},
	}); ok {
		t.Error("response with -Inf score accepted")
	}
}
