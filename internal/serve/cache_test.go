package serve

import (
	"math/rand"
	"testing"

	"ceaff/internal/obs"
)

// modelLRU is a deliberately naive reference implementation: a slice ordered
// most-recent-first. The property test drives it and resultCache with the
// same operation stream and demands identical observable behaviour.
type modelLRU struct {
	cap  int
	keys []cacheKey
	vals map[cacheKey]any
}

func newModelLRU(capacity int) *modelLRU {
	return &modelLRU{cap: capacity, vals: map[cacheKey]any{}}
}

func (m *modelLRU) touch(key cacheKey) {
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
	m.keys = append([]cacheKey{key}, m.keys...)
}

func (m *modelLRU) get(key cacheKey) (any, bool) {
	v, ok := m.vals[key]
	if ok {
		m.touch(key)
	}
	return v, ok
}

func (m *modelLRU) put(key cacheKey, val any) {
	if _, ok := m.vals[key]; ok {
		m.vals[key] = val
		m.touch(key)
		return
	}
	m.vals[key] = val
	m.touch(key)
	if len(m.keys) > m.cap {
		victim := m.keys[len(m.keys)-1]
		m.keys = m.keys[:len(m.keys)-1]
		delete(m.vals, victim)
	}
}

// TestCacheEvictionOrderProperty drives the cache and the reference model
// with a randomized get/put stream and requires every lookup to agree —
// which pins the eviction order, since a divergent victim choice surfaces
// as a hit/miss mismatch on a later get.
func TestCacheEvictionOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + r.Intn(8)
		c := newResultCache(capacity, obs.NewRegistry())
		m := newModelLRU(capacity)
		keyspace := capacity * 3
		for op := 0; op < 2000; op++ {
			key := cacheKey{
				version: uint64(r.Intn(2)),
				kind:    byte("ac"[r.Intn(2)]),
				row:     r.Intn(keyspace),
				k:       r.Intn(2),
			}
			if r.Intn(2) == 0 {
				val := op
				c.put(key, val)
				m.put(key, val)
			} else {
				gv, gok := c.get(key)
				wv, wok := m.get(key)
				if gok != wok || (gok && gv.(int) != wv.(int)) {
					t.Fatalf("trial %d op %d key %+v: cache (%v,%v) != model (%v,%v)",
						trial, op, key, gv, gok, wv, wok)
				}
			}
			if c.len() != len(m.keys) {
				t.Fatalf("trial %d op %d: cache len %d != model len %d", trial, op, c.len(), len(m.keys))
			}
		}
	}
}

func TestCacheVersionKeying(t *testing.T) {
	c := newResultCache(8, obs.NewRegistry())
	k1 := cacheKey{version: 1, kind: cacheKindAlign, row: 3, k: 5}
	c.put(k1, "v1-answer")
	k2 := k1
	k2.version = 2
	if _, ok := c.get(k2); ok {
		t.Fatal("version 2 lookup returned a version 1 entry")
	}
	if v, ok := c.get(k1); !ok || v != "v1-answer" {
		t.Fatalf("version 1 lookup: %v, %v", v, ok)
	}
	// Kind and k are part of the key too.
	if _, ok := c.get(cacheKey{version: 1, kind: cacheKindCandidates, row: 3, k: 5}); ok {
		t.Fatal("candidates lookup returned an align entry")
	}
	if _, ok := c.get(cacheKey{version: 1, kind: cacheKindAlign, row: 3, k: 6}); ok {
		t.Fatal("different-k lookup hit")
	}
}

func TestCacheResetAndNil(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(4, reg)
	for i := 0; i < 4; i++ {
		c.put(cacheKey{version: 1, kind: cacheKindAlign, row: i}, i)
	}
	c.Reset()
	if c.len() != 0 {
		t.Fatalf("post-reset len %d", c.len())
	}
	if _, ok := c.get(cacheKey{version: 1, kind: cacheKindAlign, row: 0}); ok {
		t.Fatal("hit after reset")
	}
	// Reset must not break subsequent inserts.
	c.put(cacheKey{version: 2, kind: cacheKindAlign, row: 9}, "fresh")
	if v, ok := c.get(cacheKey{version: 2, kind: cacheKindAlign, row: 9}); !ok || v != "fresh" {
		t.Fatalf("post-reset insert: %v, %v", v, ok)
	}

	// The nil cache (CacheSize 0) is inert but safe.
	var nc *resultCache
	nc.put(cacheKey{}, 1)
	if _, ok := nc.get(cacheKey{}); ok {
		t.Fatal("nil cache hit")
	}
	nc.Reset()
	if nc.len() != 0 {
		t.Fatal("nil cache len")
	}
	if newResultCache(0, reg) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
}

func TestCacheEvictionMetric(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(2, reg)
	for i := 0; i < 5; i++ {
		c.put(cacheKey{row: i}, i)
	}
	if got := reg.Counter("serve.cache.evictions").Value(); got != 3 {
		t.Fatalf("evictions counter %v, want 3", got)
	}
}
