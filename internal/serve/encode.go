package serve

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"unicode/utf8"

	"ceaff/internal/mat"
)

// Hand-rolled JSON encoding for the hot response types. encoding/json
// allocates per call (reflection caches, the encodeState buffer growth, the
// map-key sort) — at heavy traffic the response path became the dominant
// allocation site. These appenders write into a caller-provided buffer from
// the mat byte arena and reproduce encoding/json's output byte for byte:
// the same HTML escaping (the Encoder default), the same ES6-style float
// formatting with the e-0X exponent cleanup, the same omitempty elisions,
// and the same sorted map keys. TestEncodeMatchesStdlib pins the identity
// property against randomized inputs.
//
// Non-finite floats are the one case encoding/json rejects
// (UnsupportedValueError); the appenders report ok=false and the server
// falls back to writeJSON so even the failure bytes match.

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with encoding/json's
// HTML-escaping rules: `"`, `\`, control characters, `<`, `>`, `&` escaped,
// invalid UTF-8 replaced with �, and U+2028/U+2029 escaped.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				// Control characters plus <, >, & get the \u00XX form.
				buf = append(buf, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendJSONFloat appends f with encoding/json's float64 formatting: 'f'
// shortest form, switching to 'e' outside [1e-6, 1e21) with single-digit
// negative exponents unpadded. ok is false for NaN/Inf, which encoding/json
// refuses to encode.
func appendJSONFloat(buf []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return buf, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	mark := len(buf)
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 → e-9, matching the stdlib's ES6-style exponents.
		if n := len(buf); n-mark >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, true
}

func appendJSONBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, "true"...)
	}
	return append(buf, "false"...)
}

// appendDecision appends one Decision object, honouring the struct's field
// order and omitempty tags (target elided when "", rank when 0).
func appendDecision(buf []byte, d Decision) ([]byte, bool) {
	buf = append(buf, `{"source_index":`...)
	buf = strconv.AppendInt(buf, int64(d.SourceIndex), 10)
	buf = append(buf, `,"source":`...)
	buf = appendJSONString(buf, d.Source)
	buf = append(buf, `,"target_index":`...)
	buf = strconv.AppendInt(buf, int64(d.TargetIndex), 10)
	if d.Target != "" {
		buf = append(buf, `,"target":`...)
		buf = appendJSONString(buf, d.Target)
	}
	buf = append(buf, `,"score":`...)
	buf, ok := appendJSONFloat(buf, d.Score)
	if !ok {
		return buf, false
	}
	if d.Rank != 0 {
		buf = append(buf, `,"rank":`...)
		buf = strconv.AppendInt(buf, int64(d.Rank), 10)
	}
	buf = append(buf, `,"matched":`...)
	buf = appendJSONBool(buf, d.Matched)
	if d.Degraded {
		buf = append(buf, `,"degraded":true`...)
	}
	return append(buf, '}'), true
}

// appendAlignResponse appends the /v1/align response body (without the
// Encoder's trailing newline; the writer adds it).
func appendAlignResponse(buf []byte, resp alignResponse) ([]byte, bool) {
	buf = append(buf, `{"degraded":`...)
	buf = appendJSONBool(buf, resp.Degraded)
	buf = append(buf, `,"results":`...)
	if resp.Results == nil {
		buf = append(buf, "null"...)
		return append(buf, '}'), true
	}
	buf = append(buf, '[')
	for i, d := range resp.Results {
		if i > 0 {
			buf = append(buf, ',')
		}
		var ok bool
		if buf, ok = appendDecision(buf, d); !ok {
			return buf, false
		}
	}
	buf = append(buf, ']')
	return append(buf, '}'), true
}

// appendCandidate appends one Candidate object; the features map is written
// in sorted key order exactly as encoding/json sorts map keys.
func appendCandidate(buf []byte, c Candidate) ([]byte, bool) {
	buf = append(buf, `{"target_index":`...)
	buf = strconv.AppendInt(buf, int64(c.TargetIndex), 10)
	buf = append(buf, `,"target":`...)
	buf = appendJSONString(buf, c.Target)
	buf = append(buf, `,"score":`...)
	buf, ok := appendJSONFloat(buf, c.Score)
	if !ok {
		return buf, false
	}
	buf = append(buf, `,"rank":`...)
	buf = strconv.AppendInt(buf, int64(c.Rank), 10)
	buf = append(buf, `,"features":`...)
	if c.Features == nil {
		buf = append(buf, "null"...)
		return append(buf, '}'), true
	}
	var karr [4]string
	keys := karr[:0]
	for k := range c.Features {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = append(buf, '{')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, k)
		buf = append(buf, ':')
		if buf, ok = appendJSONFloat(buf, c.Features[k]); !ok {
			return buf, false
		}
	}
	buf = append(buf, '}')
	return append(buf, '}'), true
}

// appendCandidatesResponse appends the candidates-endpoint body — the
// single-key map encoding/json produces for map[string][]Candidate.
func appendCandidatesResponse(buf []byte, cands []Candidate) ([]byte, bool) {
	buf = append(buf, `{"candidates":`...)
	if cands == nil {
		buf = append(buf, "null"...)
		return append(buf, '}'), true
	}
	buf = append(buf, '[')
	for i, c := range cands {
		if i > 0 {
			buf = append(buf, ',')
		}
		var ok bool
		if buf, ok = appendCandidate(buf, c); !ok {
			return buf, false
		}
	}
	buf = append(buf, ']')
	return append(buf, '}'), true
}

// writeAlignResponse writes the align answer through the arena-backed
// encoder, falling back to the stdlib path when disabled by config or when
// a non-finite score makes encoding/json's error behaviour authoritative.
func (s *Server) writeAlignResponse(w http.ResponseWriter, resp alignResponse) {
	// A partial answer — any source degraded by partition loss — is
	// advertised in a header so clients and load generators can count
	// partials without parsing bodies. Engine-Partial is absent on full
	// answers, keeping healthy responses byte-identical across topologies.
	for _, d := range resp.Results {
		if d.Degraded {
			w.Header().Set("Engine-Partial", "true")
			s.reg.Counter("serve.align.partial").Inc()
			break
		}
	}
	if s.cfg.StdlibEncode {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	buf := mat.GetScratchBytes(64 + 160*len(resp.Results))
	out, ok := appendAlignResponse(buf, resp)
	if !ok {
		mat.PutScratchBytes(out)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	out = append(out, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
	mat.PutScratchBytes(out)
}

// writeCandidatesResponse is the candidates-endpoint counterpart.
func (s *Server) writeCandidatesResponse(w http.ResponseWriter, cands []Candidate) {
	if s.cfg.StdlibEncode {
		writeJSON(w, http.StatusOK, map[string][]Candidate{"candidates": cands})
		return
	}
	buf := mat.GetScratchBytes(64 + 256*len(cands))
	out, ok := appendCandidatesResponse(buf, cands)
	if !ok {
		mat.PutScratchBytes(out)
		writeJSON(w, http.StatusOK, map[string][]Candidate{"candidates": cands})
		return
	}
	out = append(out, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
	mat.PutScratchBytes(out)
}
