package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ceaff/internal/align"
	"ceaff/internal/core"
	"ceaff/internal/kg"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
	"ceaff/internal/wal"
)

// mutTestInput handcrafts a tiny corpus for mutation-path tests: three
// entities per side, one relation, a seed and two test pairs. Embedders are
// nil — these tests never run the real pipeline.
func mutTestInput() *core.Input {
	g1, g2 := kg.New("left"), kg.New("right")
	for _, n := range []string{"a", "b", "c"} {
		g1.AddEntity("l:" + n)
		g2.AddEntity("r:" + n)
	}
	r1, r2 := g1.AddRelation("rel"), g2.AddRelation("rel")
	g1.AddTriple(0, r1, 1)
	g1.AddTriple(1, r1, 2)
	g2.AddTriple(0, r2, 1)
	g2.AddTriple(1, r2, 2)
	return &core.Input{
		G1: g1, G2: g2,
		Seeds: []align.Pair{{U: 0, V: 0}},
		Tests: []align.Pair{{U: 1, V: 1}, {U: 2, V: 2}},
	}
}

// stubBuild is the cheap BuildFunc for update-subsystem tests: a fresh
// deterministic stub engine per call, no pipeline.
func stubBuild(_ context.Context, in *core.Input, _ uint64) (Aligner, error) {
	return newStubAligner(in.G1.NumEntities()), nil
}

// fastRetry is a retry policy with instant sleeps so chaos tests don't wait
// out real backoff.
func fastRetry() robust.RetryPolicy {
	return robust.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

// mutHarness wires the full durable update subsystem around stub or real
// builds: WAL on disk, store, server, updater.
type mutHarness struct {
	reg   *obs.Registry
	srv   *Server
	store *Store
	log   *wal.Log
	upd   *Updater
	ts    *httptest.Server

	walPath string
	cancel  context.CancelFunc
}

func newMutHarness(t *testing.T, build BuildFunc, ucfg UpdaterConfig) *mutHarness {
	t.Helper()
	h := &mutHarness{
		reg:     obs.NewRegistry(),
		walPath: filepath.Join(t.TempDir(), "mutations.wal"),
	}
	in := mutTestInput()
	wlog, info, err := wal.Open(h.walPath, BaseFingerprint(in), h.reg)
	if err != nil {
		t.Fatal(err)
	}
	h.log = wlog
	h.store, err = NewStore(in, info.Records)
	if err != nil {
		t.Fatal(err)
	}
	h.srv = NewServer(testServerConfig(), h.reg)
	h.srv.Publish(newStubAligner(in.G1.NumEntities()), h.store.Seq())
	h.upd = NewUpdater(ucfg, h.store, wlog, build, h.srv, h.reg, h.store.Seq())
	h.srv.SetMutator(h.upd)
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.upd.Start(ctx)
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() {
		h.ts.Close()
		h.cancel()
		h.upd.Close()
		h.log.Close()
	})
	return h
}

func postMutate(t *testing.T, ts *httptest.Server, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/mutate", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header
}

// TestMutateDisabledWithoutWAL pins that a daemon started without -wal
// answers mutations with 501, not a panic or silent drop.
func TestMutateDisabledWithoutWAL(t *testing.T) {
	srv := NewServer(testServerConfig(), obs.NewRegistry())
	srv.SetAligner(newStubAligner(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, body, _ := postMutate(t, ts,
		`{"mutations":[{"op":"add_seed","source":"x","target":"y"}]}`)
	if status != http.StatusNotImplemented {
		t.Fatalf("mutate without mutator: status %d (%s), want 501", status, body)
	}
}

// TestMutateValidationSurface covers the 4xx surface of POST /v1/mutate and
// pins batch atomicity: a batch with any invalid mutation changes nothing —
// not the projection, not the WAL, not the engine version.
func TestMutateValidationSurface(t *testing.T) {
	h := newMutHarness(t, stubBuild, DefaultUpdaterConfig())
	cfgMax := testServerConfig().MaxBatch

	big, _ := json.Marshal(map[string]any{
		"mutations": make([]wal.Mutation, cfgMax+1),
	})
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{not json`, http.StatusBadRequest},
		{"empty batch", `{"mutations":[]}`, http.StatusBadRequest},
		{"oversized batch", string(big), http.StatusBadRequest},
		{"unknown op", `{"mutations":[{"op":"frobnicate"}]}`, http.StatusBadRequest},
		{"bad kg index", `{"mutations":[{"op":"add_triple","kg":3,"head":"x","rel":"r","tail":"y"}]}`, http.StatusBadRequest},
		{"remove absent triple", `{"mutations":[{"op":"remove_triple","kg":1,"head":"l:a","rel":"rel","tail":"l:a"}]}`, http.StatusBadRequest},
		{"seed unknown entity", `{"mutations":[{"op":"add_seed","source":"nope","target":"r:a"}]}`, http.StatusBadRequest},
		{"duplicate seed", `{"mutations":[{"op":"add_seed","source":"l:a","target":"r:a"}]}`, http.StatusBadRequest},
		{"valid then invalid is atomic", `{"mutations":[
			{"op":"add_triple","kg":1,"head":"l:a","rel":"rel","tail":"l:c"},
			{"op":"remove_seed","source":"l:b","target":"r:b"}]}`, http.StatusBadRequest},
	} {
		status, body, _ := postMutate(t, h.ts, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
	}
	if got := h.store.Seq(); got != 0 {
		t.Fatalf("store seq %d after rejected batches, want 0", got)
	}
	if got := h.log.Seq(); got != 0 {
		t.Fatalf("wal seq %d after rejected batches, want 0", got)
	}
	if got := h.reg.Counter("serve.mutations.rejected").Value(); got < 6 {
		t.Fatalf("rejected counter %d, want >= 6", got)
	}
	if got := h.upd.Version(); got != 0 {
		t.Fatalf("engine version %d after rejected batches, want 0", got)
	}
}

// TestMutateAppliesAndRebuilds drives the happy path end to end: a valid
// batch is acknowledged with its WAL sequence range, becomes durable, and
// the background loop rebuilds and publishes a new engine version that the
// response headers then advertise.
func TestMutateAppliesAndRebuilds(t *testing.T) {
	cfg := DefaultUpdaterConfig()
	cfg.Retry = fastRetry()
	h := newMutHarness(t, stubBuild, cfg)

	status, body, _ := postMutate(t, h.ts, `{"mutations":[
		{"op":"add_triple","kg":1,"head":"l:a","rel":"rel","tail":"l:c"},
		{"op":"add_seed","source":"l:c","target":"r:c"}]}`)
	if status != http.StatusOK {
		t.Fatalf("mutate status %d: %s", status, body)
	}
	var res MutateResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.FirstSeq != 1 || res.LastSeq != 2 {
		t.Fatalf("sequence range [%d,%d], want [1,2]", res.FirstSeq, res.LastSeq)
	}
	if got := h.reg.Counter("wal.fsyncs").Value(); got < 1 {
		t.Fatal("batch acknowledged without a WAL fsync")
	}
	if got := h.reg.Counter("serve.mutations.applied").Value(); got != 2 {
		t.Fatalf("applied counter %d, want 2", got)
	}

	// The rebuild loop publishes version 2 (the batch's last seq).
	waitFor(t, func() bool { return h.upd.Version() == 2 })
	waitFor(t, func() bool { return h.srv.EngineVersion() == 2 })
	if h.upd.Pending() != 0 {
		t.Fatalf("pending %d after rebuild, want 0", h.upd.Pending())
	}
	resp, _ := postAlign(t, h.ts.Client(), h.ts.URL, nil, "0")
	if got := resp.Header.Get("Engine-Version"); got != "2" {
		t.Fatalf("Engine-Version header %q, want \"2\"", got)
	}
	if got := resp.Header.Get("Engine-Stale"); got != "false" {
		t.Fatalf("Engine-Stale header %q, want \"false\"", got)
	}

	// A second batch advances the sequence from where the first ended.
	status, body, _ = postMutate(t, h.ts,
		`{"mutations":[{"op":"remove_seed","source":"l:c","target":"r:c"}]}`)
	if status != http.StatusOK {
		t.Fatalf("second mutate status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.FirstSeq != 3 || res.LastSeq != 3 {
		t.Fatalf("second batch range [%d,%d], want [3,3]", res.FirstSeq, res.LastSeq)
	}
	waitFor(t, func() bool { return h.upd.Version() == 3 })
}

// TestMalformedDeadlineHeaderRejected pins the budget-header contract: a
// well-formed X-Deadline-Ms tightens the deadline, an absent one falls back
// to the default, and a malformed one is a 400 with a metric — never a
// silent fallback to a budget the client did not ask for.
func TestMalformedDeadlineHeaderRejected(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(testServerConfig(), reg)
	srv.SetAligner(newStubAligner(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, hdr := range []string{"abc", "0", "-25", "12.5", ""} {
		var h map[string]string
		if hdr != "" {
			h = map[string]string{"X-Deadline-Ms": hdr}
		}
		want := http.StatusBadRequest
		if hdr == "" {
			want = http.StatusOK
		}
		resp, _ := postAlign(t, ts.Client(), ts.URL, h, "0")
		if resp.StatusCode != want {
			t.Errorf("X-Deadline-Ms %q: status %d, want %d", hdr, resp.StatusCode, want)
		}
		if wantRejected := int64(i + 1); hdr != "" &&
			reg.Counter("serve.deadline.rejected").Value() != wantRejected {
			t.Errorf("rejected counter after %q: %d, want %d",
				hdr, reg.Counter("serve.deadline.rejected").Value(), wantRejected)
		}
	}
	resp, _ := postAlign(t, ts.Client(), ts.URL, map[string]string{"X-Deadline-Ms": "5000"}, "0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid deadline header: status %d, want 200", resp.StatusCode)
	}
}
