package serve

import (
	"context"
	"reflect"
	"testing"

	"ceaff/internal/blocking"
	"ceaff/internal/mat"
)

// literalSparseEngine builds a SparseEngine directly from a dense matrix
// with full candidate lists — the configuration in which blocked serving
// must agree with dense serving exactly.
func literalSparseEngine(fused *mat.Dense) *SparseEngine {
	n := fused.Rows
	src := make([]string, n)
	tgt := make([]string, fused.Cols)
	byName := map[string]int{}
	for i := range src {
		src[i] = string(rune('a' + i))
		byName[src[i]] = i
	}
	for j := range tgt {
		tgt[j] = string(rune('A' + j))
	}
	cands := make(blocking.Candidates, n)
	scores := make([][]float64, n)
	for i := 0; i < n; i++ {
		cands[i] = make([]int, fused.Cols)
		for j := range cands[i] {
			cands[i][j] = j
		}
		scores[i] = fused.Row(i)
	}
	e := &SparseEngine{
		cands:    cands,
		scores:   scores,
		feats:    [3][][]float64{nil, nil, scores}, // "string" feature = fused
		srcNames: src,
		tgtNames: tgt,
		byName:   byName,
		greedy:   make([]int, n),
	}
	for i := range cands {
		e.greedy[i] = sparseArgmax(cands[i], scores[i])
	}
	return e
}

// TestSparseEngineBitIdentity pins blocked serving against dense serving on
// full candidate lists: collective, greedy, and candidates answers agree
// field for field. Runs in the GOMAXPROCS=1/4 determinism suite.
func TestSparseEngineBitIdentity(t *testing.T) {
	const n = 18
	fused := coalesceTestMatrix(n)
	dense := literalEngine(fused)
	sparse := literalSparseEngine(fused)
	ctx := context.Background()

	if sparse.NumSources() != dense.NumSources() {
		t.Fatal("source universe size differs")
	}
	for _, rows := range [][]int{{0}, {3, 7}, {1, 2, 3, 4, 5}, {17, 0, 9}} {
		want, err := dense.AlignCollective(ctx, rows, "")
		if err != nil {
			t.Fatal(err)
		}
		got, err := sparse.AlignCollective(ctx, rows, "")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rows %v:\n got %+v\nwant %+v", rows, got, want)
		}
		if gg, wg := sparse.AlignGreedy(rows), dense.AlignGreedy(rows); !reflect.DeepEqual(gg, wg) {
			t.Fatalf("greedy rows %v:\n got %+v\nwant %+v", rows, gg, wg)
		}
	}
	for row := 0; row < n; row += 5 {
		for _, k := range []int{1, 3, n} {
			want, err := dense.Candidates(ctx, row, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sparse.Candidates(ctx, row, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("candidates row %d k %d:\n got %+v\nwant %+v", row, k, got, want)
			}
		}
	}
	// Grouped execution agrees with per-group calls.
	groups := [][]int{{0, 4}, {2}, {9, 1, 5}}
	gotG, err := sparse.AlignCollectiveGroups(ctx, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	for g, rows := range groups {
		want, _ := sparse.AlignCollective(ctx, rows, "")
		if !reflect.DeepEqual(gotG[g], want) {
			t.Fatalf("group %d mismatch", g)
		}
	}
}

// TestSparseEngineTruncatedCandidates exercises genuinely sparse lists: a
// source with no candidates stays unmatched everywhere, and decisions only
// ever name in-list targets.
func TestSparseEngineTruncatedCandidates(t *testing.T) {
	e := &SparseEngine{
		cands:    blocking.Candidates{{1, 2}, {}, {0, 2}},
		scores:   [][]float64{{0.9, 0.4}, {}, {0.7, 0.8}},
		srcNames: []string{"a", "b", "c"},
		tgtNames: []string{"A", "B", "C"},
		byName:   map[string]int{"a": 0, "b": 1, "c": 2},
		greedy:   []int{0, 0, 0},
	}
	for i, cs := range e.cands {
		e.greedy[i] = sparseArgmax(cs, e.scores[i])
	}
	ctx := context.Background()

	out, err := e.AlignCollective(ctx, []int{0, 1, 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Matched || out[0].TargetIndex != 1 {
		t.Fatalf("source a: %+v, want target 1", out[0])
	}
	if out[1].Matched || out[1].TargetIndex != -1 {
		t.Fatalf("candidate-less source matched: %+v", out[1])
	}
	if !out[2].Matched || out[2].TargetIndex != 2 {
		t.Fatalf("source c: %+v, want target 2", out[2])
	}
	if out[0].Rank != 1 || out[2].Rank != 1 {
		t.Fatalf("candidate-local ranks wrong: %+v", out)
	}

	g := e.AlignGreedy([]int{1})
	if g[0].Matched {
		t.Fatalf("greedy matched a candidate-less source: %+v", g[0])
	}
	cands, err := e.Candidates(ctx, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("candidate-less source listed %+v", cands)
	}
	if _, err := e.Candidates(ctx, 9, 1); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	for key, want := range map[string]int{"0": 0, "c": 2} {
		if got, ok := e.Resolve(key); !ok || got != want {
			t.Fatalf("Resolve(%q) = %d,%v", key, got, ok)
		}
	}
}
