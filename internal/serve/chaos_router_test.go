package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ceaff/internal/obs"
)

// Chaos modes a replica harness can be switched into at runtime.
const (
	chaosNormal  int32 = iota
	chaosKill          // sever the connection after reading the request (kill -9 mid-gather)
	chaosSlow          // stall before answering
	chaosCorrupt       // answer with a bit-flipped response body
)

// chaosReplica is a real replica Server (query surface + /v1/shard gather
// protocol) behind a fault-injecting proxy, standing in for a separate
// `ceaffd -replica` process that can be killed, slowed, or made to emit
// damaged frames mid-test.
type chaosReplica struct {
	part  *Partition
	reg   *obs.Registry
	srv   *Server
	ts    *httptest.Server
	mode  atomic.Int32
	delay time.Duration // chaosSlow stall; set before switching modes
}

func newChaosReplica(t *testing.T, p *Partition) *chaosReplica {
	t.Helper()
	cr := &chaosReplica{part: p, reg: obs.NewRegistry()}
	cfg := testServerConfig()
	cfg.CacheSize = 0
	cr.srv = NewServer(cfg, cr.reg)
	cr.srv.SetAligner(p)
	cr.srv.SetPartition(p)
	inner := cr.srv.Handler()
	cr.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch cr.mode.Load() {
		case chaosKill:
			// The replica died mid-gather: the request was sent, the
			// connection drops, no bytes come back.
			io.Copy(io.Discard, r.Body)
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("chaos: response writer cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		case chaosSlow:
			time.Sleep(cr.delay)
		case chaosCorrupt:
			// Serve the real answer, then flip one bit of the body — a torn
			// or damaged wire frame the CRC must catch.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if len(body) > 0 {
				body[len(body)/2] ^= 0x40
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(cr.ts.Close)
	return cr
}

// chaosFleet builds nparts chaos replicas over base and a Router connected
// to them via HTTP transports.
func chaosFleet(t *testing.T, base *Engine, nparts int, cfg RouterConfig, reg *obs.Registry) ([]*chaosReplica, *Router) {
	t.Helper()
	parts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*chaosReplica, nparts)
	transports := make([]Transport, nparts)
	for i, p := range parts {
		reps[i] = newChaosReplica(t, p)
		transports[i] = &HTTPTransport{Base: reps[i].ts.URL}
	}
	rt, err := NewRouter(context.Background(), cfg, transports, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return reps, rt
}

// rowsByOwner groups global source rows by their owning partition.
func rowsByOwner(rt *Router, n int) map[int][]int {
	st := rt.state.Load()
	m := map[int][]int{}
	for row := 0; row < n; row++ {
		m[st.owner[row]] = append(m[st.owner[row]], row)
	}
	return m
}

func allKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprint(i)
	}
	return keys
}

// TestChaosReplicaKillMidGather kills one replica of a three-way fleet and
// asserts the partial-answer contract end to end over HTTP: 200 (never a
// 500), Engine-Partial header, "degraded":true on exactly the lost
// partition's sources, the reachable rows answered exactly as a request
// naming only them would be, the serve.partition.lost gauge raised — and
// full bit-identical recovery once the replica is back and probed.
func TestChaosReplicaKillMidGather(t *testing.T) {
	const n, nparts = 24, 3
	base := literalEngine(coalesceTestMatrix(n))
	cfg := routerTestConfig()
	cfg.GatherTimeout = 2 * time.Second
	reg := obs.NewRegistry()
	reps, rt := chaosFleet(t, base, nparts, cfg, reg)

	srvCfg := testServerConfig()
	srvCfg.CacheSize = 0
	srv := NewServer(srvCfg, obs.NewRegistry())
	srv.SetAligner(rt)
	front := httptest.NewServer(srv.Handler())
	defer front.Close()

	keys := allKeys(n)
	baseStatus, baseline := postAlignRaw(t, front.Client(), front.URL, keys...)
	if baseStatus != http.StatusOK {
		t.Fatalf("healthy fleet answered %d: %s", baseStatus, baseline)
	}

	const lostPart = 1
	reps[lostPart].mode.Store(chaosKill)

	resp, err := front.Client().Post(front.URL+"/v1/align", "application/json", alignBody(keys...))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial answer status %d, want 200: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Engine-Partial") != "true" {
		t.Fatal("Engine-Partial header missing on a partial answer")
	}
	var partial alignResponse
	if err := json.Unmarshal(body, &partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Results) != n {
		t.Fatalf("partial answer has %d results, want %d", len(partial.Results), n)
	}

	owned := rowsByOwner(rt, n)
	lostRows := map[int]bool{}
	for _, row := range owned[lostPart] {
		lostRows[row] = true
	}
	if len(lostRows) == 0 {
		t.Fatalf("partition %d owns no rows; test corpus too small", lostPart)
	}
	var reachable []int
	for row := 0; row < n; row++ {
		if !lostRows[row] {
			reachable = append(reachable, row)
		}
	}
	want, err := base.AlignCollective(context.Background(), reachable, "")
	if err != nil {
		t.Fatal(err)
	}
	wi := 0
	for _, d := range partial.Results {
		if lostRows[d.SourceIndex] {
			if !d.Degraded || d.Matched || d.TargetIndex != -1 {
				t.Fatalf("lost source %d not answered as a degraded placeholder: %+v", d.SourceIndex, d)
			}
			continue
		}
		if d.Degraded {
			t.Fatalf("reachable source %d marked degraded", d.SourceIndex)
		}
		w := want[wi]
		w.Unilateral = false // not serialized; absent after the round trip
		wi++
		if !reflect.DeepEqual(d, w) {
			t.Fatalf("reachable source %d:\n got %+v\nwant %+v", d.SourceIndex, d, w)
		}
	}
	if got := reg.Gauge("serve.partition.lost").Value(); got != 1 {
		t.Fatalf("serve.partition.lost = %v, want 1", got)
	}
	if reg.Counter("serve.gather.partial").Value() == 0 {
		t.Fatal("serve.gather.partial never incremented")
	}

	// Recovery: replica back, probe loop notices, answers return to the
	// exact healthy bytes.
	reps[lostPart].mode.Store(chaosNormal)
	rt.probeOnce(context.Background())
	if got := reg.Gauge("serve.partition.lost").Value(); got != 0 {
		t.Fatalf("after recovery serve.partition.lost = %v, want 0", got)
	}
	status, recovered := postAlignRaw(t, front.Client(), front.URL, keys...)
	if status != http.StatusOK || string(recovered) != string(baseline) {
		t.Fatalf("recovery not bit-identical: status %d\n got %s\nwant %s", status, recovered, baseline)
	}
}

// TestChaosSlowReplicaHedgeWins puts a standby behind a slow primary: the
// hedged second request must win, the answer must be exactly the healthy
// answer (no double-counting, no duplicate rows), and the hedge counters
// must show the win.
func TestChaosSlowReplicaHedgeWins(t *testing.T) {
	const n, nparts = 16, 2
	base := literalEngine(coalesceTestMatrix(n))
	parts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	standbyParts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	primary0 := newChaosReplica(t, parts[0])
	standby0 := newChaosReplica(t, standbyParts[0])
	rep1 := newChaosReplica(t, parts[1])

	cfg := routerTestConfig()
	cfg.DisableHedge = false
	cfg.HedgeDelay = 10 * time.Millisecond
	reg := obs.NewRegistry()
	rt, err := NewRouter(context.Background(), cfg, []Transport{
		&HTTPTransport{Base: primary0.ts.URL},
		&HTTPTransport{Base: standby0.ts.URL}, // second announcement of partition 0 → standby
		&HTTPTransport{Base: rep1.ts.URL},
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	want, err := base.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}

	primary0.delay = 400 * time.Millisecond
	primary0.mode.Store(chaosSlow)

	got, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged answer differs:\n got %+v\nwant %+v", got, want)
	}
	for _, d := range got {
		if d.Degraded {
			t.Fatalf("source %d degraded although the standby was healthy", d.SourceIndex)
		}
	}
	if reg.Counter("serve.replica.hedges").Value() == 0 {
		t.Fatal("hedge never fired against the slow primary")
	}
	if reg.Counter("serve.replica.hedge_wins").Value() == 0 {
		t.Fatal("hedge fired but never won")
	}
}

// TestChaosTornWireFrames damages the wire at both levels: a transport
// talking to a corrupting replica must surface typed ErrWireFrame errors
// (never panic, never accept the bytes), a garbage request frame must come
// back as a typed error frame and count serve.shard.bad_frames, and a
// router over a corrupting replica must degrade that partition rather than
// fail the request.
func TestChaosTornWireFrames(t *testing.T) {
	const n, nparts = 16, 2
	base := literalEngine(coalesceTestMatrix(n))
	cfg := routerTestConfig()
	reg := obs.NewRegistry()
	reps, rt := chaosFleet(t, base, nparts, cfg, reg)

	// Transport level: every response from a corrupting replica is a typed
	// frame error.
	reps[0].mode.Store(chaosCorrupt)
	tr := &HTTPTransport{Base: reps[0].ts.URL}
	if _, err := tr.Meta(context.Background()); !errors.Is(err, ErrWireFrame) {
		t.Fatalf("corrupted meta: err = %v, want ErrWireFrame", err)
	}
	owned := rowsByOwner(rt, n)
	if _, err := tr.Gather(context.Background(), 0, owned[0][:1], false); !errors.Is(err, ErrWireFrame) {
		t.Fatalf("corrupted gather: err = %v, want ErrWireFrame", err)
	}

	// Replica level: a garbage request frame is refused with a typed error
	// frame under HTTP 200 and counted.
	resp, err := http.Post(reps[1].ts.URL+"/v1/shard", "application/octet-stream",
		bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05}))
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage frame answered %d, want 200 + error frame", resp.StatusCode)
	}
	mt, payload, err := decodeWireFrame(frame)
	if err != nil || mt != wireMsgError {
		t.Fatalf("garbage frame answer: type %#x, err %v; want an error frame", mt, err)
	}
	// The replica's own ErrWireFrame identity is deliberately not carried
	// across the wire — to a client, a refused request is a remote error;
	// ErrWireFrame is reserved for damage to the bytes *it* received.
	if werr := decodeWireError(payload); !errors.Is(werr, ErrRemote) {
		t.Fatalf("error frame decodes to %v, want ErrRemote", werr)
	}
	if reps[1].reg.Counter("serve.shard.bad_frames").Value() == 0 {
		t.Fatal("serve.shard.bad_frames never incremented")
	}

	// Router level: the corrupting partition degrades, the other answers.
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	got, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		wantDegraded := rt.state.Load().owner[d.SourceIndex] == 0
		if d.Degraded != wantDegraded {
			t.Fatalf("source %d degraded=%v, want %v", d.SourceIndex, d.Degraded, wantDegraded)
		}
	}
}

// TestChaosVersionSkewHotSwap walks a rolling hot-swap: one replica moves
// to the next engine version first, and until the whole fleet agrees the
// router must keep deciding at the old version — the early mover's rows
// degrade (counted as version skew), and no decision ever mixes rows from
// two versions. Once every replica reports the new version, one probe
// adopts it fleet-wide and full answers resume.
func TestChaosVersionSkewHotSwap(t *testing.T) {
	const n, nparts = 16, 2
	base := literalEngine(coalesceTestMatrix(n))
	parts, err := NewPartitions(base, nparts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := routerTestConfig()
	var adopted atomic.Uint64
	cfg.OnVersion = func(v uint64) { adopted.Store(v) }
	reg := obs.NewRegistry()
	rt, err := NewRouter(context.Background(), cfg, []Transport{
		&LocalTransport{P: parts[0]}, &LocalTransport{P: parts[1]},
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	baseline, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}

	// Partition 1 swaps first; the router still routes at version 0.
	parts[1].SetVersion(1)
	mixed, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}
	owner := rt.state.Load().owner
	for i, d := range mixed {
		if owner[d.SourceIndex] == 1 {
			if !d.Degraded {
				t.Fatalf("source %d on the swapped partition answered at a mixed version: %+v", d.SourceIndex, d)
			}
			continue
		}
		if d.Degraded {
			t.Fatalf("source %d on the unswapped partition degraded", d.SourceIndex)
		}
		// Reachable rows must answer exactly as the version-0 snapshot
		// restricted to them would; sanity-check the easy invariant here.
		_ = i
	}
	if reg.Counter("serve.replica.version_skew").Value() == 0 {
		t.Fatal("serve.replica.version_skew never incremented during the rolling swap")
	}
	if rt.Version() != 0 {
		t.Fatalf("router adopted version %d while the fleet disagreed", rt.Version())
	}

	// The fleet completes the swap; one probe adopts the new version.
	parts[0].SetVersion(1)
	rt.probeOnce(context.Background())
	if rt.Version() != 1 {
		t.Fatalf("router at version %d after fleet-wide swap, want 1", rt.Version())
	}
	if adopted.Load() != 1 {
		t.Fatalf("OnVersion reported %d, want 1", adopted.Load())
	}
	if reg.Counter("serve.router.version_adoptions").Value() != 1 {
		t.Fatal("version adoption not counted")
	}
	swapped, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(swapped, baseline) {
		t.Fatalf("post-swap answers differ from baseline:\n got %+v\nwant %+v", swapped, baseline)
	}
}

// TestChaosPartitionLossBreakerGate drives the per-replica breaker state
// machine on a fake clock: sustained loss trips it open (fast-failing
// later requests), it holds open through the cooldown even after the
// replica is healthy again, and the first post-cooldown request half-opens
// it, probes, and recovers bit-identically.
func TestChaosPartitionLossBreakerGate(t *testing.T) {
	const n, nparts = 16, 2
	base := literalEngine(coalesceTestMatrix(n))
	var clockNs atomic.Int64
	cfg := routerTestConfig()
	cfg.GatherTimeout = 2 * time.Second
	cfg.Breaker = BreakerConfig{
		Window: 4, MinSamples: 3, FailureThreshold: 0.5,
		Cooldown: time.Hour,
		Now:      func() time.Time { return time.Unix(0, clockNs.Load()) },
	}
	reg := obs.NewRegistry()
	reps, rt := chaosFleet(t, base, nparts, cfg, reg)

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	baseline, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}

	const lostPart = 0
	assertPartial := func(stage string) {
		t.Helper()
		got, err := rt.AlignCollective(context.Background(), rows, "")
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		owner := rt.state.Load().owner
		for _, d := range got {
			if want := owner[d.SourceIndex] == lostPart; d.Degraded != want {
				t.Fatalf("%s: source %d degraded=%v, want %v", stage, d.SourceIndex, d.Degraded, want)
			}
		}
	}

	reps[lostPart].mode.Store(chaosKill)
	assertPartial("during outage") // three failed tries trip the breaker
	link := rt.replicas[lostPart].links[0]
	if link.breaker.State() != BreakerOpen {
		t.Fatalf("breaker %v after sustained loss, want open", link.breaker.State())
	}
	assertPartial("breaker open") // fast-fail path: no transport attempts admitted

	// Replica restored, but the cooldown has not elapsed: the breaker keeps
	// gating, so the partition stays degraded — deterministically.
	reps[lostPart].mode.Store(chaosNormal)
	assertPartial("healthy but cooling down")
	if link.breaker.State() != BreakerOpen {
		t.Fatalf("breaker %v during cooldown, want open", link.breaker.State())
	}

	// Cooldown elapses: the next request's Allow half-opens the breaker,
	// the probe succeeds, and answers return to the exact healthy bytes.
	clockNs.Add(int64(2 * time.Hour))
	recovered, err := rt.AlignCollective(context.Background(), rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recovered, baseline) {
		t.Fatalf("post-cooldown recovery differs from baseline:\n got %+v\nwant %+v", recovered, baseline)
	}
	if link.breaker.State() != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", link.breaker.State())
	}
	rt.probeOnce(context.Background())
	if got := reg.Gauge("serve.partition.lost").Value(); got != 0 {
		t.Fatalf("serve.partition.lost = %v after recovery, want 0", got)
	}
}
