package experiments

import "ceaff/internal/bench"

// Reference values transcribed from the paper's evaluation section. They
// are printed next to measured values so every table reports
// paper-vs-reproduction, and EXPERIMENTS.md is generated from the same
// source of truth.

// Method row labels, in the tables' order.
const (
	RowMTransE  = "MTransE"
	RowIPTransE = "IPTransE"
	RowBootEA   = "BootEA"
	RowRSNs     = "RSNs"
	RowMuGNN    = "MuGNN"
	RowNAEA     = "NAEA"
	RowGCNAlign = "GCN-Align"
	RowJAPE     = "JAPE"
	RowRDGCN    = "RDGCN"
	RowMultiKE  = "MultiKE"
	RowGMAlign  = "GM-Align"
	RowCEAFF    = "CEAFF"
	RowCEAFFNoC = "CEAFF w/o C"
	RowCEAFFNoL = "CEAFF w/o Ml"
)

// Ablation row labels of Table V.
const (
	RowAblFull   = "CEAFF"
	RowAblNoMs   = "w/o Ms"
	RowAblNoMn   = "w/o Mn"
	RowAblNoMl   = "w/o Ml"
	RowAblNoAFF  = "w/o AFF"
	RowAblNoC    = "w/o C"
	RowAblNoCMs  = "w/o C,Ms"
	RowAblNoCMn  = "w/o C,Mn"
	RowAblNoCMl  = "w/o C,Ml"
	RowAblNoCAFF = "w/o C,AFF"
	RowAblNoTh   = "w/o th1,th2"
	RowAblLR     = "LR"
)

// cell identifies one table cell by (method row, dataset column).
type cell struct{ Row, Col string }

// Table3Paper holds the cross-lingual accuracies of Table III.
var Table3Paper = map[cell]float64{}

// Table4Paper holds the mono-lingual accuracies of Table IV.
var Table4Paper = map[cell]float64{}

// Table5Paper holds the ablation accuracies of Table V.
var Table5Paper = map[cell]float64{}

// Table6Paper holds the Table VI ranking metrics; columns are suffixed with
// the metric name ("/H1", "/H10", "/MRR"). Hits values are fractions.
var Table6Paper = map[cell]float64{}

func fill(dst map[cell]float64, rows []string, cols []string, vals [][]float64) {
	for i, r := range rows {
		for j, c := range cols {
			v := vals[i][j]
			if v >= 0 {
				dst[cell{r, c}] = v
			}
		}
	}
}

func init() {
	t3cols := []string{bench.DBP15KZhEn, bench.DBP15KJaEn, bench.DBP15KFrEn, bench.SRPRSEnFr, bench.SRPRSEnDe}
	fill(Table3Paper,
		[]string{RowMTransE, RowIPTransE, RowBootEA, RowRSNs, RowMuGNN, RowNAEA,
			RowGCNAlign, RowJAPE, RowRDGCN, RowGMAlign, RowCEAFF},
		t3cols,
		[][]float64{
			{0.308, 0.279, 0.244, 0.251, 0.312},
			{0.406, 0.367, 0.333, 0.255, 0.313},
			{0.629, 0.622, 0.653, 0.313, 0.442},
			{0.581, 0.563, 0.607, 0.348, 0.497},
			{0.494, 0.501, 0.495, 0.139, 0.255},
			{0.650, 0.641, 0.673, 0.195, 0.321},
			{0.413, 0.399, 0.373, 0.155, 0.253},
			{0.412, 0.363, 0.324, 0.256, 0.320},
			{0.708, 0.767, 0.886, 0.514, 0.613},
			{0.679, 0.740, 0.894, 0.627, 0.677},
			{0.795, 0.860, 0.964, 0.964, 0.977},
		})

	t4cols := []string{bench.DBP100KDbWd, bench.DBP100KDbYg, bench.SRPRSDbWd, bench.SRPRSDbYg}
	fill(Table4Paper,
		[]string{RowMTransE, RowIPTransE, RowBootEA, RowRSNs, RowMuGNN, RowNAEA,
			RowGCNAlign, RowJAPE, RowMultiKE, RowRDGCN, RowGMAlign, RowCEAFFNoL, RowCEAFF},
		t4cols,
		[][]float64{
			{0.281, 0.252, 0.223, 0.246},
			{0.349, 0.297, 0.231, 0.227},
			{0.748, 0.761, 0.323, 0.313},
			{0.656, 0.711, 0.399, 0.402},
			{0.616, 0.741, 0.151, 0.175},
			{0.767, 0.779, 0.215, 0.211},
			{0.477, 0.601, 0.177, 0.193},
			{0.318, 0.236, 0.219, 0.233},
			{0.915, 0.880, -1, -1}, // MultiKE: SRPRS lacks aligned relations
			{0.902, 0.864, 0.834, 0.852},
			{-1, -1, 0.815, 0.828}, // GM-Align: DBP100K too slow in the paper
			{0.992, 0.955, 0.915, 0.937},
			{1.000, 1.000, 1.000, 1.000},
		})

	t5cols := []string{bench.SRPRSEnFr, bench.SRPRSEnDe, bench.SRPRSDbWd, bench.SRPRSDbYg, bench.DBP15KZhEn}
	fill(Table5Paper,
		[]string{RowAblFull, RowAblNoMs, RowAblNoMn, RowAblNoMl, RowAblNoAFF, RowAblNoC,
			RowAblNoCMs, RowAblNoCMn, RowAblNoCMl, RowAblNoCAFF, RowAblNoTh, RowAblLR},
		t5cols,
		[][]float64{
			{0.964, 0.977, 1.000, 1.000, 0.795},
			{0.915, 0.971, 1.000, 1.000, 0.622},
			{0.947, 0.972, 1.000, 1.000, 0.507},
			{0.782, 0.863, 0.915, 0.937, 0.778},
			{0.956, 0.968, 0.998, 0.999, 0.785},
			{0.930, 0.939, 1.000, 1.000, 0.719},
			{0.873, 0.886, 1.000, 1.000, 0.586},
			{0.904, 0.927, 0.999, 1.000, 0.408},
			{0.628, 0.769, 0.866, 0.898, 0.711},
			{0.914, 0.925, 0.986, 0.994, 0.701},
			{0.940, 0.969, 0.994, 0.996, 0.768},
			{0.957, 0.965, 1.000, 1.000, 0.786},
		})

	// Table VI: per dataset and metric. -1 marks the cells the paper leaves
	// empty (MRR for GM-Align; Hits@10/MRR for CEAFF, whose collective
	// output is not a ranking).
	t6 := []struct {
		row  string
		vals [9]float64 // ZH(H1,H10,MRR), JA(...), FR(...)
	}{
		{RowMTransE, [9]float64{0.308, 0.614, 0.364, 0.279, 0.575, 0.349, 0.244, 0.556, 0.335}},
		{RowIPTransE, [9]float64{0.406, 0.735, 0.516, 0.367, 0.693, 0.474, 0.333, 0.686, 0.451}},
		{RowBootEA, [9]float64{0.629, 0.848, 0.703, 0.622, 0.854, 0.701, 0.653, 0.874, 0.731}},
		{RowRSNs, [9]float64{0.581, 0.812, 0.662, 0.563, 0.798, 0.647, 0.607, 0.845, 0.691}},
		{RowMuGNN, [9]float64{0.494, 0.844, 0.611, 0.501, 0.857, 0.621, 0.495, 0.870, 0.621}},
		{RowNAEA, [9]float64{0.650, 0.867, 0.720, 0.641, 0.873, 0.718, 0.673, 0.894, 0.752}},
		{RowGCNAlign, [9]float64{0.413, 0.744, 0.549, 0.399, 0.745, 0.546, 0.373, 0.745, 0.532}},
		{RowJAPE, [9]float64{0.412, 0.745, 0.490, 0.363, 0.685, 0.476, 0.324, 0.667, 0.430}},
		{RowRDGCN, [9]float64{0.708, 0.846, 0.746, 0.767, 0.895, 0.812, 0.886, 0.957, 0.911}},
		{RowGMAlign, [9]float64{0.679, 0.785, -1, 0.740, 0.872, -1, 0.894, 0.952, -1}},
		{RowCEAFFNoC, [9]float64{0.719, 0.874, 0.774, 0.783, 0.907, 0.827, 0.928, 0.979, 0.947}},
		{RowCEAFF, [9]float64{0.795, -1, -1, 0.860, -1, -1, 0.964, -1, -1}},
	}
	t6cols := []string{bench.DBP15KZhEn, bench.DBP15KJaEn, bench.DBP15KFrEn}
	for _, e := range t6 {
		for d, ds := range t6cols {
			for m, metric := range []string{"/H1", "/H10", "/MRR"} {
				v := e.vals[d*3+m]
				if v >= 0 {
					Table6Paper[cell{e.row, ds + metric}] = v
				}
			}
		}
	}
}

// Table2Paper holds the original Table II statistics: per KG-pair, the
// (triples, entities) of each side in the real corpora.
var Table2Paper = map[string][2][2]int{
	bench.DBP15KZhEn:  {{153929, 66469}, {237674, 98125}},
	bench.DBP15KJaEn:  {{164373, 65744}, {233319, 95680}},
	bench.DBP15KFrEn:  {{192191, 66858}, {278590, 105889}},
	bench.DBP100KDbWd: {{463294, 100000}, {448774, 100000}},
	bench.DBP100KDbYg: {{428952, 100000}, {502563, 100000}},
	bench.SRPRSEnFr:   {{36508, 15000}, {33532, 15000}},
	bench.SRPRSEnDe:   {{38281, 15000}, {37069, 15000}},
	bench.SRPRSDbWd:   {{38421, 15000}, {40159, 15000}},
	bench.SRPRSDbYg:   {{33571, 15000}, {34660, 15000}},
}
