package experiments

import (
	"ceaff/internal/align"
	"ceaff/internal/bench"
	"ceaff/internal/blocking"
	"ceaff/internal/core"
	"ceaff/internal/eval"
	"ceaff/internal/kg"
	"ceaff/internal/obs"
)

// Extension row labels (Table E1 — not in the paper; this repository's
// extension study, cf. DESIGN.md §7).
const (
	RowExtCEAFF     = "CEAFF"
	RowExtCSLS      = "CEAFF + CSLS"
	RowExtBootstrap = "CEAFF + bootstrap"
	RowExtSingle    = "single-stage AFF"
	RowExtHungarian = "Hungarian decision"
	RowExtGreedy11  = "greedy 1-1 decision"
	RowExtTopK      = "top-50 preferences"
	RowExtBlocked   = "blocked pipeline"
)

// TableE1 measures the extension features against baseline CEAFF on a
// cross-lingual and a mono-lingual pair: the alternative collective
// matchers the paper's conclusion invites, CSLS hubness correction,
// bootstrapped self-training, single-stage fusion, truncated preferences
// and the blocked (sparse-candidate) pipeline.
func TableE1(opt Options) (*Table, error) {
	cols := []string{bench.SRPRSEnFr, bench.SRPRSDbWd}
	rows := []string{RowExtCEAFF, RowExtCSLS, RowExtBootstrap, RowExtSingle,
		RowExtHungarian, RowExtGreedy11, RowExtTopK, RowExtBlocked}
	t := newTable("Table E1 (extension): CEAFF variants beyond the paper", rows, cols, nil)

	ctx, span := obs.StartSpan(opt.ctx(), "tableE1")
	defer span.End()
	opt.Ctx = ctx

	base := opt.ceaffConfig()
	err := forEachColumn(opt, cols, func(opt Options, col string) error {
		in, d, err := inputFor(col, opt)
		if err != nil {
			return err
		}
		fs, err := core.ComputeFeaturesContext(opt.ctx(), in, base.GCN)
		if err != nil {
			return err
		}
		decide := func(row string, mut func(*core.Config)) error {
			cfg := base
			mut(&cfg)
			res, err := core.DecideContext(opt.ctx(), fs, cfg)
			if err != nil {
				return err
			}
			t.set(row, col, res.Accuracy)
			opt.log("%s: %s done", col, row)
			return nil
		}
		steps := []struct {
			row string
			mut func(*core.Config)
		}{
			{RowExtCEAFF, func(c *core.Config) {}},
			{RowExtCSLS, func(c *core.Config) { c.CSLSNeighbors = 10 }},
			{RowExtSingle, func(c *core.Config) { c.SingleStageFusion = true }},
			{RowExtHungarian, func(c *core.Config) { c.Decision = core.Assignment }},
			{RowExtGreedy11, func(c *core.Config) { c.Decision = core.GreedyOneToOne }},
			{RowExtTopK, func(c *core.Config) { c.PreferenceTopK = 50 }},
		}
		for _, s := range steps {
			if err := decide(s.row, s.mut); err != nil {
				return err
			}
		}

		boot, err := core.RunIterative(in, base, core.DefaultIterativeOptions())
		if err != nil {
			return err
		}
		t.set(RowExtBootstrap, col, boot.Accuracy)
		opt.log("%s: bootstrap done", col)

		blocked, err := core.RunBlocked(in, base, standardBlocker(d))
		if err != nil {
			return err
		}
		t.set(RowExtBlocked, col, blocked.Accuracy)
		opt.log("%s: blocked done", col)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// standardBlocker combines token and neighbour blocking over a dataset.
func standardBlocker(d *bench.Dataset) blocking.Candidates {
	names := func(g *kg.KG, ids []kg.EntityID) []string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = g.EntityName(id)
		}
		return out
	}
	b := &blocking.Blocker{
		Generators: []blocking.Generator{
			blocking.NewTokenIndex(
				names(d.G1, align.SourceIDs(d.TestPairs)),
				names(d.G2, align.TargetIDs(d.TestPairs)), 0),
			blocking.NewNeighborExpansion(d.G1, d.G2, d.SeedPairs, d.TestPairs),
		},
		NumTargets:    len(d.TestPairs),
		MinCandidates: 20,
		Seed:          11,
	}
	return b.Generate()
}

// BlockedRecall reports the blocking recall diagnostic on a dataset.
func BlockedRecall(d *bench.Dataset) eval.PRF {
	cands := standardBlocker(d)
	stats := cands.Stats()
	return eval.PRF{Recall: stats.Recall}
}
