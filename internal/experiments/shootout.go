package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"ceaff/internal/bench"
	"ceaff/internal/core"
	"ceaff/internal/eval"
	"ceaff/internal/match"
	"ceaff/internal/obs"
)

// ShootoutRow is one (dataset, strategy) measurement of the decision-strategy
// shootout: the accuracy of the strategy's assignment over the shared fused
// matrix, the wall time of the decision alone (features and fusion excluded
// — they are identical across strategies), and the heap it allocated.
type ShootoutRow struct {
	Dataset  string
	Strategy string
	Accuracy float64
	Millis   float64
	// AllocMB is the decision's total heap allocation (runtime.MemStats
	// TotalAlloc delta) in MiB — a machine-independent memory-pressure
	// proxy; peak RSS is process-monotonic and would charge each strategy
	// for its predecessors.
	AllocMB float64
}

// Shootout compares every registered decision strategy on the standard
// dataset shapes: one feature + fusion pass per dataset, then each strategy
// decides the same fused matrix. Accuracy isolates decision quality;
// latency and allocation isolate decision cost.
func Shootout(opt Options) ([]ShootoutRow, error) {
	cols := []string{bench.SRPRSEnFr, bench.SRPRSDbWd}
	ctx, span := obs.StartSpan(opt.ctx(), "shootout")
	defer span.End()
	opt.Ctx = ctx

	cfg := opt.ceaffConfig()
	var out []ShootoutRow
	for _, col := range cols {
		in, _, err := inputFor(col, opt)
		if err != nil {
			return nil, err
		}
		fs, err := core.ComputeFeaturesContext(opt.ctx(), in, cfg.GCN)
		if err != nil {
			return nil, err
		}
		res, err := core.DecideContext(opt.ctx(), fs, cfg)
		if err != nil {
			return nil, err
		}
		for _, name := range match.StrategyNames() {
			st, err := match.ByName(name)
			if err != nil {
				return nil, err
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			asn := st.Decide(res.Fused, cfg.PreferenceTopK)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			out = append(out, ShootoutRow{
				Dataset:  col,
				Strategy: name,
				Accuracy: eval.Accuracy(asn),
				Millis:   float64(elapsed.Microseconds()) / 1e3,
				AllocMB:  float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			})
			opt.log("%s: %s done", col, name)
		}
	}
	return out, nil
}

// RenderShootout writes the strategy shootout as fixed-width text.
func RenderShootout(w io.Writer, rows []ShootoutRow) {
	title := "Table S1 (extension): decision-strategy shootout"
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-18s %-10s %9s %10s %10s\n", "dataset", "strategy", "accuracy", "ms", "alloc MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-10s %9.4f %10.2f %10.2f\n",
			shorten(r.Dataset, 18), r.Strategy, r.Accuracy, r.Millis, r.AllocMB)
	}
	fmt.Fprintln(w, "latency and allocation cover the decision only; features and fusion are shared")
	fmt.Fprintln(w)
}

// RenderShootoutMarkdown writes the shootout as a GitHub-flavoured table.
func RenderShootoutMarkdown(w io.Writer, rows []ShootoutRow) {
	fmt.Fprintln(w, "### Table S1 (extension): decision-strategy shootout")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| dataset | strategy | accuracy | ms | alloc MB |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %.4f | %.2f | %.2f |\n",
			r.Dataset, r.Strategy, r.Accuracy, r.Millis, r.AllocMB)
	}
	fmt.Fprintln(w)
}
