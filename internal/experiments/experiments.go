// Package experiments regenerates every table of the paper's evaluation
// section (§VII) on the synthetic benchmark analogues: Table II (dataset
// statistics), Table III (cross-lingual accuracy), Table IV (mono-lingual
// accuracy), Table V (ablations) and Table VI (ranking metrics). Each
// runner reports measured values side by side with the paper's, so the
// reproduction's shape — who wins, by how much, where features matter — is
// auditable cell by cell.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ceaff/internal/baselines"
	"ceaff/internal/bench"
	"ceaff/internal/core"
	"ceaff/internal/eval"
	"ceaff/internal/match"
	"ceaff/internal/obs"
	"ceaff/internal/robust"
)

// FaultCell is the fault-injection site fired once per table-cell attempt,
// used by tests to demonstrate that a failing cell is retried and, when
// persistently failing, isolated without sinking the rest of the table.
const FaultCell = "experiments.cell"

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the standard dataset sizes (1.0 = the default reduced
	// analogues; see bench.StandardSpecs).
	Scale float64
	// Fast switches substrates to small test-grade settings.
	Fast bool
	// Progress, if non-nil, receives one line per completed unit of work.
	Progress func(format string, args ...any)
	// Ctx, if non-nil, cancels the run cooperatively: expiry aborts between
	// cells (and inside feature computation) with the context's error.
	Ctx context.Context
	// CellRetries bounds re-attempts of a failed table cell: 0 means the
	// default of one retry (two attempts), a negative value disables
	// retrying, and a positive value is used as given.
	CellRetries int
	// FailFast aborts the whole run on the first persistently failing cell
	// instead of recording it in Table.Failed and continuing.
	FailFast bool
	// Parallel bounds how many dataset columns of a table run concurrently:
	// 0 or 1 runs columns serially (the default), larger values fan
	// independent columns out over that many workers. Cells are
	// independently seeded and column results land in keyed maps, so the
	// rendered table is identical at any setting; only Progress-line
	// interleaving varies.
	Parallel int
}

// DefaultOptions runs the full-size analogues with default substrates.
func DefaultOptions() Options {
	return Options{Scale: 1.0}
}

func (o Options) log(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) cellAttempts() int {
	switch {
	case o.CellRetries < 0:
		return 1
	case o.CellRetries == 0:
		return 2
	default:
		return o.CellRetries + 1
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runCell executes one cell's work with bounded retry and failure
// isolation. Context errors abort the run; any other persistent failure is
// recorded under every cell in cols (or returned when o.FailFast is set)
// so the rest of the table still completes.
func runCell(t *Table, o Options, row string, cols []string, fn func() error) error {
	reg := obs.Metrics(o.ctx())
	cellTimer := reg.Histogram("experiments.cell.seconds")
	var err error
	for attempt := 0; attempt < o.cellAttempts(); attempt++ {
		if err = o.ctx().Err(); err != nil {
			return err
		}
		done := cellTimer.Time()
		if err = robust.Fire(FaultCell); err == nil {
			err = fn()
		}
		done()
		if err == nil {
			reg.Counter("experiments.cells").Inc()
			if attempt > 0 {
				o.log("%s: %s recovered on attempt %d", cols[0], row, attempt+1)
			}
			return nil
		}
		if isCtxErr(err) {
			return err
		}
		reg.Counter("experiments.cell_retries").Inc()
		o.log("%s: %s attempt %d failed: %v", cols[0], row, attempt+1, err)
	}
	if o.FailFast {
		return fmt.Errorf("experiments: cell (%s, %s): %w", row, cols[0], err)
	}
	reg.Counter("experiments.cell_failures").Add(int64(len(cols)))
	for _, col := range cols {
		t.fail(row, col, err)
	}
	return nil
}

// forEachColumn runs fn once for every column, each nested under its own
// pre-created "dataset:<col>" span. With opt.Parallel > 1 the columns run
// concurrently on at most that many workers — spans are created serially up
// front so the trace's child order (and obs.StructureSignature) never
// depends on scheduling, and fn receives an Options whose Progress callback
// is serialized. Errors are collected per column and the first one in
// column order wins, so the outcome is independent of which column finished
// first.
func forEachColumn(opt Options, cols []string, fn func(o Options, col string) error) error {
	ctxs := make([]context.Context, len(cols))
	spans := make([]*obs.Span, len(cols))
	for i, col := range cols {
		ctxs[i], spans[i] = obs.StartSpan(opt.ctx(), "dataset:"+col)
	}

	if opt.Parallel <= 1 || len(cols) <= 1 {
		var firstErr error
		for i, col := range cols {
			if firstErr == nil {
				o := opt
				o.Ctx = ctxs[i]
				firstErr = fn(o, col)
			}
			spans[i].End()
		}
		return firstErr
	}

	if opt.Progress != nil {
		var mu sync.Mutex
		p := opt.Progress
		opt.Progress = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			p(format, args...)
		}
	}
	sem := make(chan struct{}, opt.Parallel)
	errs := make([]error, len(cols))
	var wg sync.WaitGroup
	for i, col := range cols {
		i, col := i, col
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer spans[i].End()
			o := opt
			o.Ctx = ctxs[i]
			errs[i] = fn(o, col)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o Options) settings() baselines.Settings {
	if o.Fast {
		return baselines.FastSettings()
	}
	return baselines.DefaultSettings()
}

func (o Options) ceaffConfig() core.Config {
	cfg := core.DefaultConfig()
	s := o.settings()
	cfg.GCN = s.GCN
	return cfg
}

// inputFor generates the named standard dataset and wraps it as a pipeline
// input.
func inputFor(name string, opt Options) (*core.Input, *bench.Dataset, error) {
	spec, ok := bench.SpecByName(name, opt.Scale)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if opt.Fast {
		// Keep the word-embedding dimension aligned with the fast GCN.
		spec.Dim = opt.settings().Dim
	}
	d, err := bench.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	in := &core.Input{
		G1: d.G1, G2: d.G2,
		Seeds: d.SeedPairs, Tests: d.TestPairs,
		Emb1: d.Emb1, Emb2: d.Emb2,
	}
	return in, d, nil
}

// Table2Row is one KG pair's statistics with the paper's original numbers.
type Table2Row struct {
	Dataset            string
	Triples1, Ent1     int // generated analogue, KG1
	Triples2, Ent2     int
	PaperTriples1      int
	PaperEnt1          int
	PaperTriples2      int
	PaperEnt2          int
	KSStatistic        float64
	SeedPairs, Testing int
}

// Table2 generates all nine datasets and reports their statistics
// (reproducing Table II at reduced scale), including the K-S degree test
// between each pair's KGs.
func Table2(opt Options) ([]Table2Row, error) {
	ctx, span := obs.StartSpan(opt.ctx(), "table2")
	defer span.End()
	opt.Ctx = ctx
	var rows []Table2Row
	for _, spec := range bench.StandardSpecs(opt.Scale) {
		_, genSpan := obs.StartSpan(ctx, "generate:"+spec.Name)
		_, d, err := inputFor(spec.Name, opt)
		genSpan.End()
		if err != nil {
			return nil, err
		}
		paper := Table2Paper[spec.Name]
		rows = append(rows, Table2Row{
			Dataset:       spec.Name,
			Triples1:      d.G1.NumTriples(),
			Ent1:          d.G1.NumEntities(),
			Triples2:      d.G2.NumTriples(),
			Ent2:          d.G2.NumEntities(),
			PaperTriples1: paper[0][0],
			PaperEnt1:     paper[0][1],
			PaperTriples2: paper[1][0],
			PaperEnt2:     paper[1][1],
			KSStatistic:   bench.KSStatistic(d.G1, d.G2),
			SeedPairs:     len(d.SeedPairs),
			Testing:       len(d.TestPairs),
		})
		opt.log("table2: %s generated", spec.Name)
	}
	return rows, nil
}

// Table is a measured-vs-paper accuracy grid. Rendering order comes from
// the Rows/Cols slices, so tables print identically no matter in which
// order (or how concurrently) their cells were filled.
type Table struct {
	Title string
	Rows  []string
	Cols  []string
	// Measured and Paper map (row, col) cells to values; missing entries
	// render as "-".
	Measured map[cell]float64
	Paper    map[cell]float64
	// Failed records cells whose computation persistently failed and was
	// isolated (rendered as "FAIL").
	Failed map[cell]error

	mu sync.Mutex // guards Measured and Failed while columns run in parallel
}

// Get returns the measured value of a cell.
func (t *Table) Get(row, col string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.Measured[cell{row, col}]
	return v, ok
}

func (t *Table) set(row, col string, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Measured[cell{row, col}] = v
}

func (t *Table) fail(row, col string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Failed[cell{row, col}] = err
}

// FailedCell returns the recorded failure of a cell, if any. Iterating
// Rows×Cols with it reports failures in table order — stable run to run,
// unlike ranging over the Failed map.
func (t *Table) FailedCell(row, col string) (error, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	err, ok := t.Failed[cell{row, col}]
	return err, ok
}

func newTable(title string, rows, cols []string, paper map[cell]float64) *Table {
	return &Table{
		Title: title, Rows: rows, Cols: cols,
		Measured: make(map[cell]float64), Paper: paper,
		Failed: make(map[cell]error),
	}
}

// accuracyTableRows are the baseline rows shared by Tables III and IV.
func methodByName(s baselines.Settings, name string) baselines.Method {
	for _, m := range baselines.All(s) {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// Table3 reproduces the cross-lingual accuracy comparison.
func Table3(opt Options) (*Table, error) {
	rows := []string{RowMTransE, RowIPTransE, RowBootEA, RowRSNs, RowMuGNN, RowNAEA,
		RowGCNAlign, RowJAPE, RowRDGCN, RowGMAlign, RowCEAFF}
	cols := bench.CrossLingualNames()
	t := newTable("Table III: accuracy of cross-lingual EA", rows, cols, Table3Paper)
	ctx, span := obs.StartSpan(opt.ctx(), "table3")
	defer span.End()
	opt.Ctx = ctx
	return t, runAccuracyTable(t, opt, nil)
}

// Table4 reproduces the mono-lingual accuracy comparison, including the
// paper's availability policies (MultiKE needs aligned relations and is
// mono-lingual; GM-Align was infeasible on DBP100K) and the CEAFF w/o Ml
// row.
func Table4(opt Options) (*Table, error) {
	rows := []string{RowMTransE, RowIPTransE, RowBootEA, RowRSNs, RowMuGNN, RowNAEA,
		RowGCNAlign, RowJAPE, RowMultiKE, RowRDGCN, RowGMAlign, RowCEAFFNoL, RowCEAFF}
	cols := bench.MonoLingualNames()
	t := newTable("Table IV: accuracy of mono-lingual EA", rows, cols, Table4Paper)
	skip := func(row, col string) bool {
		isSRPRS := col == bench.SRPRSDbWd || col == bench.SRPRSDbYg
		if row == RowMultiKE && isSRPRS {
			return true // SRPRS lacks the aligned relations MultiKE needs
		}
		if row == RowGMAlign && !isSRPRS {
			return true // paper: GM-Align takes days on DBP100K
		}
		return false
	}
	ctx, span := obs.StartSpan(opt.ctx(), "table4")
	defer span.End()
	opt.Ctx = ctx
	return t, runAccuracyTable(t, opt, skip)
}

// runAccuracyTable fills an accuracy table: every baseline row with greedy
// decisions, the CEAFF rows through the pipeline (reusing one feature
// computation per dataset). Each cell runs in isolation: a persistently
// failing cell is recorded in t.Failed and the rest of the table still
// completes.
func runAccuracyTable(t *Table, opt Options, skip func(row, col string) bool) error {
	s := opt.settings()
	return forEachColumn(opt, t.Cols, func(o Options, col string) error {
		return runAccuracyColumn(t, o, s, col, skip)
	})
}

// runAccuracyColumn fills one dataset column of an accuracy table; opt.Ctx
// carries the column's pre-created "dataset:<name>" span, so per-column
// cost shows up in the trace.
func runAccuracyColumn(t *Table, opt Options, s baselines.Settings, col string, skip func(row, col string) bool) error {
	in, _, err := inputFor(col, opt)
	if err != nil {
		return err
	}
	for _, row := range t.Rows {
		row := row
		if row == RowCEAFF || row == RowCEAFFNoL || row == RowCEAFFNoC {
			continue // handled below from shared features
		}
		if skip != nil && skip(row, col) {
			continue
		}
		m := methodByName(s, row)
		if m == nil {
			return fmt.Errorf("experiments: unknown method row %q", row)
		}
		err := runCell(t, opt, row, []string{col}, func() error {
			sim, err := m.Align(in)
			if err != nil {
				return err
			}
			t.set(row, col, eval.Accuracy(match.Greedy(sim)))
			return nil
		})
		if err != nil {
			return err
		}
		opt.log("%s: %s done", col, row)
	}

	ceaffRows := intersect(t.Rows, RowCEAFF, RowCEAFFNoL, RowCEAFFNoC)
	cfg := opt.ceaffConfig()
	fs, err := core.ComputeFeaturesContext(opt.ctx(), in, cfg.GCN)
	if err != nil {
		// A dead feature computation sinks only this column's CEAFF
		// cells, unless the run itself was cancelled.
		return failRows(t, opt, col, ceaffRows, err)
	}
	for _, row := range ceaffRows {
		row := row
		var c core.Config
		switch row {
		case RowCEAFF:
			c = cfg
		case RowCEAFFNoL:
			c = cfg
			c.UseString = false
		case RowCEAFFNoC:
			c = cfg
			c.Decision = core.Independent
		}
		err := runCell(t, opt, row, []string{col}, func() error {
			res, err := core.DecideContext(opt.ctx(), fs, c)
			if err != nil {
				return err
			}
			t.set(row, col, res.Accuracy)
			return nil
		})
		if err != nil {
			return err
		}
		opt.log("%s: %s done", col, row)
	}
	return nil
}

// intersect returns the members of want that appear in rows, in rows order.
func intersect(rows []string, want ...string) []string {
	var out []string
	for _, r := range rows {
		for _, w := range want {
			if r == w {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// failRows records err for every (row, col) cell, honouring FailFast and
// propagating context errors.
func failRows(t *Table, opt Options, col string, rows []string, err error) error {
	if isCtxErr(err) {
		return err
	}
	if opt.FailFast {
		return fmt.Errorf("experiments: column %s: %w", col, err)
	}
	for _, row := range rows {
		t.Failed[cell{row, col}] = err
		opt.log("%s: %s failed: %v", col, row, err)
	}
	return nil
}

// ablationConfigs returns the twelve Table V configurations in row order.
func ablationConfigs(base core.Config) []struct {
	Row string
	Cfg core.Config
} {
	mk := func(row string, mut func(*core.Config)) struct {
		Row string
		Cfg core.Config
	} {
		c := base
		mut(&c)
		return struct {
			Row string
			Cfg core.Config
		}{row, c}
	}
	return []struct {
		Row string
		Cfg core.Config
	}{
		mk(RowAblFull, func(c *core.Config) {}),
		mk(RowAblNoMs, func(c *core.Config) { c.UseStructural = false }),
		mk(RowAblNoMn, func(c *core.Config) { c.UseSemantic = false }),
		mk(RowAblNoMl, func(c *core.Config) { c.UseString = false }),
		mk(RowAblNoAFF, func(c *core.Config) { c.Fusion = core.FixedFusion }),
		mk(RowAblNoC, func(c *core.Config) { c.Decision = core.Independent }),
		mk(RowAblNoCMs, func(c *core.Config) { c.Decision = core.Independent; c.UseStructural = false }),
		mk(RowAblNoCMn, func(c *core.Config) { c.Decision = core.Independent; c.UseSemantic = false }),
		mk(RowAblNoCMl, func(c *core.Config) { c.Decision = core.Independent; c.UseString = false }),
		mk(RowAblNoCAFF, func(c *core.Config) { c.Decision = core.Independent; c.Fusion = core.FixedFusion }),
		mk(RowAblNoTh, func(c *core.Config) { c.FusionOpts.DisableThetas = true }),
		mk(RowAblLR, func(c *core.Config) { c.Fusion = core.LearnedFusion }),
	}
}

// Table5 reproduces the ablation study: twelve CEAFF configurations on the
// five Table V datasets, reusing one feature computation per dataset.
func Table5(opt Options) (*Table, error) {
	base := opt.ceaffConfig()
	configs := ablationConfigs(base)
	rows := make([]string, len(configs))
	for i, c := range configs {
		rows[i] = c.Row
	}
	t := newTable("Table V: ablation and further experiments", rows, bench.AblationNames(), Table5Paper)
	ctx, span := obs.StartSpan(opt.ctx(), "table5")
	defer span.End()
	opt.Ctx = ctx

	err := forEachColumn(opt, t.Cols, func(opt Options, col string) error {
		in, _, err := inputFor(col, opt)
		if err != nil {
			return err
		}
		fs, err := core.ComputeFeaturesContext(opt.ctx(), in, base.GCN)
		if err != nil {
			return failRows(t, opt, col, rows, err)
		}
		for _, c := range configs {
			c := c
			err := runCell(t, opt, c.Row, []string{col}, func() error {
				res, err := core.DecideContext(opt.ctx(), fs, c.Cfg)
				if err != nil {
					return err
				}
				t.set(c.Row, col, res.Accuracy)
				return nil
			})
			if err != nil {
				return err
			}
			opt.log("%s: %s done", col, c.Row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table6 reproduces the ranking-problem evaluation on the DBP15K
// analogues: Hits@1, Hits@10 and MRR per method; CEAFF contributes only
// Hits@1 because stable matching outputs pairs, not rankings.
func Table6(opt Options) (*Table, error) {
	methods := []string{RowMTransE, RowIPTransE, RowBootEA, RowRSNs, RowMuGNN, RowNAEA,
		RowGCNAlign, RowJAPE, RowRDGCN, RowGMAlign, RowCEAFFNoC, RowCEAFF}
	datasets := []string{bench.DBP15KZhEn, bench.DBP15KJaEn, bench.DBP15KFrEn}
	var cols []string
	for _, d := range datasets {
		cols = append(cols, d+"/H1", d+"/H10", d+"/MRR")
	}
	t := newTable("Table VI: evaluation as ranking problem on DBP15K*", methods, cols, Table6Paper)
	ctx, span := obs.StartSpan(opt.ctx(), "table6")
	defer span.End()
	opt.Ctx = ctx

	s := opt.settings()
	err := forEachColumn(opt, datasets, func(opt Options, ds string) error {
		rankCols := []string{ds + "/H1", ds + "/H10", ds + "/MRR"}
		in, _, err := inputFor(ds, opt)
		if err != nil {
			return err
		}
		for _, row := range methods {
			row := row
			if row == RowCEAFF || row == RowCEAFFNoC {
				continue
			}
			m := methodByName(s, row)
			if m == nil {
				return fmt.Errorf("experiments: unknown method row %q", row)
			}
			err := runCell(t, opt, row, rankCols, func() error {
				sim, err := m.Align(in)
				if err != nil {
					return err
				}
				r := eval.Ranking(sim)
				t.set(row, ds+"/H1", r.Hits1)
				t.set(row, ds+"/H10", r.Hits10)
				t.set(row, ds+"/MRR", r.MRR)
				return nil
			})
			if err != nil {
				return err
			}
			opt.log("%s: %s done", ds, row)
		}

		cfg := opt.ceaffConfig()
		fs, err := core.ComputeFeaturesContext(opt.ctx(), in, cfg.GCN)
		if err != nil {
			ferr := failRows(t, opt, ds+"/H1", []string{RowCEAFF, RowCEAFFNoC}, err)
			if ferr == nil {
				ferr = failRows(t, opt, ds+"/H10", []string{RowCEAFFNoC}, err)
			}
			if ferr == nil {
				ferr = failRows(t, opt, ds+"/MRR", []string{RowCEAFFNoC}, err)
			}
			return ferr
		}
		noC := cfg
		noC.Decision = core.Independent
		err = runCell(t, opt, RowCEAFFNoC, rankCols, func() error {
			res, err := core.DecideContext(opt.ctx(), fs, noC)
			if err != nil {
				return err
			}
			t.set(RowCEAFFNoC, ds+"/H1", res.Ranking.Hits1)
			t.set(RowCEAFFNoC, ds+"/H10", res.Ranking.Hits10)
			t.set(RowCEAFFNoC, ds+"/MRR", res.Ranking.MRR)
			return nil
		})
		if err != nil {
			return err
		}

		err = runCell(t, opt, RowCEAFF, []string{ds + "/H1"}, func() error {
			full, err := core.DecideContext(opt.ctx(), fs, cfg)
			if err != nil {
				return err
			}
			t.set(RowCEAFF, ds+"/H1", full.Accuracy)
			return nil
		})
		if err != nil {
			return err
		}
		opt.log("%s: CEAFF rows done", ds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
