package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ceaff/internal/match"
)

func TestShootout(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy shootout too heavy for -short")
	}
	rows, err := Shootout(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(match.StrategyNames())
	if len(rows) != want {
		t.Fatalf("%d shootout rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("%s/%s accuracy %v", r.Dataset, r.Strategy, r.Accuracy)
		}
		if r.Millis < 0 || r.AllocMB < 0 {
			t.Fatalf("%s/%s negative cost: %v ms, %v MB", r.Dataset, r.Strategy, r.Millis, r.AllocMB)
		}
	}
	var buf bytes.Buffer
	RenderShootout(&buf, rows)
	RenderShootoutMarkdown(&buf, rows)
	for _, name := range match.StrategyNames() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("rendered shootout missing strategy %q", name)
		}
	}
}
