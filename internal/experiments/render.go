package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the table as fixed-width text, each cell showing the
// measured value with the paper's value in parentheses ("-" where a value
// is unavailable).
func (t *Table) Render(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(t.Title)))

	colWidth := 16
	rowWidth := 14
	for _, r := range t.Rows {
		if len(r)+1 > rowWidth {
			rowWidth = len(r) + 1
		}
	}

	fmt.Fprintf(w, "%-*s", rowWidth, "")
	for _, c := range t.Cols {
		fmt.Fprintf(w, "%*s", colWidth, shorten(c, colWidth-1))
	}
	fmt.Fprintln(w)

	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", rowWidth, r)
		for _, c := range t.Cols {
			fmt.Fprintf(w, "%*s", colWidth, t.cellString(r, c))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "cells: measured (paper); '-' = not applicable")
	fmt.Fprintln(w)
}

func (t *Table) cellString(row, col string) string {
	k := cell{row, col}
	m, hasM := t.Measured[k]
	p, hasP := t.Paper[k]
	ms, ps := "-", "-"
	if _, failed := t.Failed[k]; failed {
		ms = "FAIL"
	} else if hasM {
		ms = fmt.Sprintf("%.3f", m)
	}
	if hasP {
		ps = fmt.Sprintf("%.3f", p)
	}
	return fmt.Sprintf("%s (%s)", ms, ps)
}

func shorten(s string, n int) string {
	s = strings.TrimSuffix(s, "*")
	s = strings.ReplaceAll(s, "DBP15K ", "")
	s = strings.ReplaceAll(s, "DBP100K ", "100K:")
	s = strings.ReplaceAll(s, "SRPRS ", "SR:")
	if len(s) > n {
		return s[:n]
	}
	return s
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table,
// measured values first with the paper's in parentheses.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprint(w, "| method |")
	for _, c := range t.Cols {
		fmt.Fprintf(w, " %s |", shorten(c, 24))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range t.Cols {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |", r)
		for _, c := range t.Cols {
			fmt.Fprintf(w, " %s |", t.cellString(r, c))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\ncells: measured (paper); '-' = not applicable")
	fmt.Fprintln(w)
}

// RenderTable2Markdown writes the dataset statistics as a markdown table.
func RenderTable2Markdown(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "### Table II: statistics of the evaluation benchmark")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| dataset | KG1 triples | KG1 entities | KG2 triples | KG2 entities | K-S | seeds | test |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d (%dk) | %d (%dk) | %d (%dk) | %d (%dk) | %.3f | %d | %d |\n",
			shorten(r.Dataset, 20),
			r.Triples1, r.PaperTriples1/1000, r.Ent1, r.PaperEnt1/1000,
			r.Triples2, r.PaperTriples2/1000, r.Ent2, r.PaperEnt2/1000,
			r.KSStatistic, r.SeedPairs, r.Testing)
	}
	fmt.Fprintln(w, "\ncells: generated analogue (paper, thousands)")
	fmt.Fprintln(w)
}

// RenderTable2 writes the dataset statistics rows.
func RenderTable2(w io.Writer, rows []Table2Row) {
	title := "Table II: statistics of the evaluation benchmark (analogue vs paper)"
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s %8s %7s %7s\n",
		"dataset", "KG1 triples", "KG1 ents", "KG2 triples", "KG2 ents", "K-S", "seeds", "test")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12s %12s %12s %12s %8.3f %7d %7d\n",
			shorten(r.Dataset, 18),
			fmt.Sprintf("%d(%dk)", r.Triples1, r.PaperTriples1/1000),
			fmt.Sprintf("%d(%dk)", r.Ent1, r.PaperEnt1/1000),
			fmt.Sprintf("%d(%dk)", r.Triples2, r.PaperTriples2/1000),
			fmt.Sprintf("%d(%dk)", r.Ent2, r.PaperEnt2/1000),
			r.KSStatistic, r.SeedPairs, r.Testing)
	}
	fmt.Fprintln(w, "cells: generated analogue (paper, thousands); K-S compares the pair's degree distributions")
	fmt.Fprintln(w)
}
