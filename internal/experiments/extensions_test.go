package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ceaff/internal/bench"
)

func TestTableE1(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep too heavy for -short")
	}
	opt := tinyOptions()
	tbl, err := TableE1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 || len(tbl.Cols) != 2 {
		t.Fatalf("Table E1 shape %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	for _, r := range tbl.Rows {
		for _, c := range tbl.Cols {
			v, ok := tbl.Get(r, c)
			if !ok {
				t.Fatalf("missing cell (%s, %s)", r, c)
			}
			if v < 0 || v > 1 {
				t.Fatalf("cell (%s, %s) = %v", r, c, v)
			}
		}
	}
	// Extension rows have no paper reference: cells render "x (-)" and the
	// markdown stays well-formed.
	var buf bytes.Buffer
	tbl.RenderMarkdown(&buf)
	if !strings.Contains(buf.String(), "(-)") {
		t.Fatal("extension table should show '-' paper cells")
	}
}

func TestBlockedRecallDiagnostic(t *testing.T) {
	spec, ok := bench.SpecByName(bench.SRPRSDbWd, 0.05)
	if !ok {
		t.Fatal("unknown spec")
	}
	d, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	prf := BlockedRecall(d)
	if prf.Recall < 0.7 {
		t.Fatalf("blocking recall %.3f on mono data, want >= 0.7", prf.Recall)
	}
}
