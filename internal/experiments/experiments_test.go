package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ceaff/internal/bench"
)

// tinyOptions keeps experiment tests fast: tiny datasets, fast substrates.
func tinyOptions() Options {
	return Options{Scale: 0.04, Fast: true}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table2 rows %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Triples1 <= 0 || r.Ent1 <= 0 || r.Triples2 <= 0 || r.Ent2 <= 0 {
			t.Fatalf("%s: empty analogue: %+v", r.Dataset, r)
		}
		if r.PaperTriples1 == 0 {
			t.Fatalf("%s: missing paper stats", r.Dataset)
		}
		if r.KSStatistic > 0.4 {
			t.Fatalf("%s: K-S %.3f too high — pair distributions diverge", r.Dataset, r.KSStatistic)
		}
		if r.SeedPairs == 0 || r.Testing == 0 {
			t.Fatalf("%s: degenerate split", r.Dataset)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("render missing title")
	}
}

func TestTable5ShapesAndRender(t *testing.T) {
	// Table 5 exercises the full CEAFF ablation grid; the other accuracy
	// tables share the same machinery with baselines on top (covered by
	// TestTable3Tiny).
	opt := tinyOptions()
	tbl, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("Table V rows %d, want 12", len(tbl.Rows))
	}
	if len(tbl.Cols) != 5 {
		t.Fatalf("Table V cols %d, want 5", len(tbl.Cols))
	}
	for _, r := range tbl.Rows {
		for _, c := range tbl.Cols {
			v, ok := tbl.Get(r, c)
			if !ok {
				t.Fatalf("missing cell (%s, %s)", r, c)
			}
			if v < 0 || v > 1 {
				t.Fatalf("cell (%s, %s) = %v out of range", r, c, v)
			}
		}
	}
	// Paper reference present for every cell of Table V.
	for _, r := range tbl.Rows {
		for _, c := range tbl.Cols {
			if _, ok := tbl.Paper[cell{r, c}]; !ok {
				t.Fatalf("missing paper value (%s, %s)", r, c)
			}
		}
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "w/o Ms") || !strings.Contains(out, "(0.964)") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestTable3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline sweep too heavy for -short")
	}
	opt := tinyOptions()
	tbl, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 || len(tbl.Cols) != 5 {
		t.Fatalf("Table III shape %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	for _, r := range tbl.Rows {
		for _, c := range tbl.Cols {
			if _, ok := tbl.Get(r, c); !ok {
				t.Fatalf("missing cell (%s, %s)", r, c)
			}
		}
	}
}

func TestTable4SkipPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline sweep too heavy for -short")
	}
	opt := tinyOptions()
	tbl, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	// MultiKE must be absent on SRPRS and present on DBP100K.
	if _, ok := tbl.Get(RowMultiKE, bench.SRPRSDbWd); ok {
		t.Fatal("MultiKE should be skipped on SRPRS")
	}
	if _, ok := tbl.Get(RowMultiKE, bench.DBP100KDbWd); !ok {
		t.Fatal("MultiKE missing on DBP100K")
	}
	// GM-Align the other way around.
	if _, ok := tbl.Get(RowGMAlign, bench.DBP100KDbWd); ok {
		t.Fatal("GM-Align should be skipped on DBP100K")
	}
	if _, ok := tbl.Get(RowGMAlign, bench.SRPRSDbYg); !ok {
		t.Fatal("GM-Align missing on SRPRS")
	}
	// CEAFF w/o Ml present everywhere.
	for _, c := range tbl.Cols {
		if _, ok := tbl.Get(RowCEAFFNoL, c); !ok {
			t.Fatalf("CEAFF w/o Ml missing on %s", c)
		}
	}
}

func TestTable6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline sweep too heavy for -short")
	}
	opt := tinyOptions()
	tbl, err := Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	// CEAFF row has H1 only.
	if _, ok := tbl.Get(RowCEAFF, bench.DBP15KZhEn+"/H1"); !ok {
		t.Fatal("CEAFF H1 missing")
	}
	if _, ok := tbl.Get(RowCEAFF, bench.DBP15KZhEn+"/H10"); ok {
		t.Fatal("CEAFF H10 should be absent (no ranked output)")
	}
	// Metric sanity: Hits@10 >= Hits@1 for ranked methods.
	for _, row := range []string{RowMTransE, RowRDGCN, RowCEAFFNoC} {
		h1, _ := tbl.Get(row, bench.DBP15KFrEn+"/H1")
		h10, _ := tbl.Get(row, bench.DBP15KFrEn+"/H10")
		if h10 < h1 {
			t.Fatalf("%s: Hits@10 %.3f < Hits@1 %.3f", row, h10, h1)
		}
		mrr, _ := tbl.Get(row, bench.DBP15KFrEn+"/MRR")
		if mrr < h1-1e-9 || mrr > 1 {
			t.Fatalf("%s: MRR %.3f inconsistent with Hits@1 %.3f", row, mrr, h1)
		}
	}
}

func TestPaperConstantsSpotCheck(t *testing.T) {
	// Transcription spot checks against the paper text.
	if v := Table3Paper[cell{RowCEAFF, bench.DBP15KZhEn}]; v != 0.795 {
		t.Fatalf("CEAFF ZH-EN paper accuracy = %v", v)
	}
	if v := Table4Paper[cell{RowCEAFF, bench.SRPRSDbYg}]; v != 1.0 {
		t.Fatalf("CEAFF SRPRS DBP-YG paper accuracy = %v", v)
	}
	if _, ok := Table4Paper[cell{RowMultiKE, bench.SRPRSDbWd}]; ok {
		t.Fatal("MultiKE SRPRS should have no paper value")
	}
	if v := Table5Paper[cell{RowAblNoCMn, bench.DBP15KZhEn}]; v != 0.408 {
		t.Fatalf("w/o C,Mn ZH-EN paper accuracy = %v", v)
	}
	if v := Table6Paper[cell{RowCEAFFNoC, bench.DBP15KFrEn + "/MRR"}]; v != 0.947 {
		t.Fatalf("CEAFF w/o C FR-EN MRR = %v", v)
	}
	if _, ok := Table6Paper[cell{RowGMAlign, bench.DBP15KZhEn + "/MRR"}]; ok {
		t.Fatal("GM-Align MRR should be absent")
	}
}

// TestTable5ParallelMatchesSerial runs the same ablation grid serially and
// with parallel columns and requires cell-for-cell identical tables: cells
// are independently seeded, so column scheduling must never reach the
// numbers.
func TestTable5ParallelMatchesSerial(t *testing.T) {
	serial, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions()
	opt.Parallel = 3
	par, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Failed) != 0 || len(serial.Failed) != 0 {
		t.Fatalf("unexpected failed cells: serial %d, parallel %d", len(serial.Failed), len(par.Failed))
	}
	for _, r := range serial.Rows {
		for _, c := range serial.Cols {
			sv, ok1 := serial.Get(r, c)
			pv, ok2 := par.Get(r, c)
			if !ok1 || !ok2 || sv != pv {
				t.Fatalf("cell (%s, %s): serial %v (%v) vs parallel %v (%v)", r, c, sv, ok1, pv, ok2)
			}
		}
	}
	var sb, pb bytes.Buffer
	serial.Render(&sb)
	par.Render(&pb)
	if sb.String() != pb.String() {
		t.Fatal("rendered tables differ between serial and parallel runs")
	}
}
