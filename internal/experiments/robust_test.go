package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ceaff/internal/robust"
)

// TestCellRetryRecovers injects a single transient cell failure and expects
// the default one-retry policy to absorb it with no FAIL cells.
func TestCellRetryRecovers(t *testing.T) {
	defer robust.Reset()
	robust.Arm(robust.Fault{Site: FaultCell, TriggerAt: 3})
	tbl, err := Table5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if robust.Fired(FaultCell) != 1 {
		t.Fatalf("fault fired %d times, want 1", robust.Fired(FaultCell))
	}
	if len(tbl.Failed) != 0 {
		t.Fatalf("transient failure not retried: %v", tbl.Failed)
	}
}

// TestCellIsolation makes one cell fail persistently and verifies the rest
// of the table completes, the failure is recorded, and it renders as FAIL.
func TestCellIsolation(t *testing.T) {
	defer robust.Reset()
	// Fire on invocation 3 and every retry of it (large window).
	robust.Arm(robust.Fault{Site: FaultCell, TriggerAt: 3, Count: 2})
	tbl, err := Table5(tinyOptions())
	if err != nil {
		t.Fatalf("persistent cell failure sank the whole table: %v", err)
	}
	if len(tbl.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly one cell", tbl.Failed)
	}
	for k, cerr := range tbl.Failed {
		if !errors.Is(cerr, robust.ErrInjected) {
			t.Errorf("failure cause %v does not wrap ErrInjected", cerr)
		}
		if _, ok := tbl.Measured[k]; ok {
			t.Errorf("failed cell (%s, %s) also has a measured value", k.Row, k.Col)
		}
	}
	// Every other cell still measured.
	want := len(tbl.Rows) * len(tbl.Cols)
	if got := len(tbl.Measured) + len(tbl.Failed); got != want {
		t.Fatalf("measured+failed = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "FAIL") {
		t.Fatal("render does not show FAIL for the isolated cell")
	}
}

// TestCellFailFast flips the same persistent failure into a run abort.
func TestCellFailFast(t *testing.T) {
	defer robust.Reset()
	robust.Arm(robust.Fault{Site: FaultCell, TriggerAt: 3, Count: 2})
	opt := tinyOptions()
	opt.FailFast = true
	if _, err := Table5(opt); !errors.Is(err, robust.ErrInjected) {
		t.Fatalf("err = %v, want the injected failure surfaced", err)
	}
}

// TestTableRunCancellation verifies an expired context aborts a table run
// with the context's error instead of being recorded as a cell failure.
func TestTableRunCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	opt := tinyOptions()
	opt.Ctx = ctx
	if _, err := Table5(opt); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
