package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := newTable("Table X: demo", []string{"MethodA", "MethodB"}, []string{"DS1", "DS2"},
		map[cell]float64{{"MethodA", "DS1"}: 0.5})
	t.set("MethodA", "DS1", 0.25)
	t.set("MethodB", "DS2", 0.75)
	return t
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Render(&buf)
	out := buf.String()
	for _, want := range []string{"Table X: demo", "MethodA", "0.250 (0.500)", "0.750 (-)", "- (-)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().RenderMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### Table X: demo", "| method |", "|---|", "| MethodA | 0.250 (0.500) |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown render missing %q:\n%s", want, out)
		}
	}
	// Same number of pipes on each table row (well-formed markdown).
	lines := strings.Split(out, "\n")
	var counts []int
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			counts = append(counts, strings.Count(l, "|"))
		}
	}
	if len(counts) < 4 {
		t.Fatal("markdown table too short")
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("ragged markdown table: %v", counts)
		}
	}
}

func TestRenderTable2Markdown(t *testing.T) {
	rows := []Table2Row{{
		Dataset: "DBP15K ZH-EN*", Triples1: 100, Ent1: 50, Triples2: 120, Ent2: 60,
		PaperTriples1: 153929, PaperEnt1: 66469, PaperTriples2: 237674, PaperEnt2: 98125,
		KSStatistic: 0.05, SeedPairs: 10, Testing: 40,
	}}
	var buf bytes.Buffer
	RenderTable2Markdown(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "| ZH-EN | 100 (153k)") {
		t.Fatalf("table 2 markdown wrong:\n%s", out)
	}
}
